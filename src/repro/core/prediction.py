"""Contended performance predictions and the offloading rule.

Combines dedicated-mode costs with slowdown factors to produce the
quantities a scheduler compares:

* ``T_frontend`` — elapsed time executing the task on the front-end
  (Sun) under contention: ``dcomp_sun × slowdown``.
* ``T_backend`` (CM2 form) — elapsed time executing on the back-end:
  ``max(dcomp_cm2 + didle_cm2, dserial_cm2 × slowdown)`` (§3.1.2); the
  back-end is gated either by its own work + idle gaps, or by the
  contended serial stream on the front-end, whichever dominates.
* ``C_out`` / ``C_in`` — contended communication costs:
  ``dcomm × slowdown``.

and the paper's Equation (1): offload a task to the back-end only when

.. math::

   T_{front} > T_{back} + C_{front \\to back} + C_{back \\to front}.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..obs import context as _obs
from ..reliability.degrade import Confidence, TaggedSlowdown, combine_confidence
from ..units import check_nonnegative
from . import batch as _batch

__all__ = [
    "BackendTaskCosts",
    "PlacementPrediction",
    "ConfidentPlacement",
    "predict_frontend_time",
    "predict_backend_time",
    "predict_comm_cost",
    "should_offload",
    "decide_placement",
    "decide_placement_tagged",
]


@dataclass(frozen=True)
class BackendTaskCosts:
    """Dedicated-mode cost breakdown of a task run on the back-end (§3.1.2).

    Attributes
    ----------
    dcomp:
        Time the back-end spends executing the task's parallel
        instructions (dedicated mode).
    didle:
        Back-end idle time while waiting for instructions from the
        front-end (dedicated mode).
    dserial:
        Front-end time executing the task's serial/scalar instructions
        (dedicated mode). Invariant from the paper: ``didle <= dserial``
        because the front-end may pre-execute serial code while the
        back-end computes.
    """

    dcomp: float
    didle: float
    dserial: float

    def __post_init__(self) -> None:
        check_nonnegative(self.dcomp, "dcomp")
        check_nonnegative(self.didle, "didle")
        check_nonnegative(self.dserial, "dserial")

    @property
    def dedicated_elapsed(self) -> float:
        """Elapsed time in a dedicated system (slowdown = 1)."""
        return max(self.dcomp + self.didle, self.dserial)


def predict_frontend_time(dcomp: float, slowdown: float) -> float:
    """``T_front = dcomp × slowdown`` (§3.1.2 / §3.2.2).

    Delegates to :func:`repro.core.batch.frontend_times` — the batch
    kernel is the single implementation of the formula.
    """
    return float(_batch.frontend_times(dcomp, slowdown))


def predict_backend_time(costs: BackendTaskCosts, slowdown: float) -> float:
    """``T_back = max(dcomp + didle, dserial × slowdown)`` (§3.1.2).

    With no contention this reduces to the dedicated elapsed time; as
    contention grows, the contended serial stream on the front-end
    eventually becomes the bottleneck — the effect behind the Figure 3
    crossover at M ≈ 200.

    Delegates to :func:`repro.core.batch.backend_times` — the batch
    kernel is the single implementation of the formula.
    """
    return float(_batch.backend_times(costs.dcomp, costs.didle, costs.dserial, slowdown))


def predict_comm_cost(dcomm: float, slowdown: float) -> float:
    """``C = dcomm × slowdown`` (§3.1.1 / §3.2.1).

    Delegates to :func:`repro.core.batch.comm_costs` — the batch
    kernel is the single implementation of the formula.
    """
    return float(_batch.comm_costs(dcomm, slowdown))


def should_offload(t_frontend: float, t_backend: float, c_out: float, c_in: float) -> bool:
    """Equation (1): run on the back-end iff it wins *including* transfers."""
    return t_frontend > t_backend + c_out + c_in


def predict_mixed_time(
    dcomp: float,
    dcomm_out: float,
    dcomm_in: float,
    comp_slowdown: float,
    comm_slowdown: float,
) -> float:
    """Prediction for an application alternating computation and communication.

    The paper's typical applications "execute for a long period of
    time, alternating computation with communication cycles" (§2); the
    natural long-term prediction applies each slowdown to its own
    share:

    .. math::

       T = dcomp \\cdot s_{comp} + (dcomm_{out} + dcomm_{in}) \\cdot s_{comm}

    Cycle boundaries are ignored — exactly the long-term view the
    paper argues for; the mixed-workload experiment quantifies how
    well it holds. Delegates to :func:`repro.core.batch.mixed_times` —
    the batch kernel is the single implementation of the formula.
    """
    return float(
        _batch.mixed_times(dcomp, dcomm_out, dcomm_in, comp_slowdown, comm_slowdown)
    )


@dataclass(frozen=True)
class PlacementPrediction:
    """The full comparison a scheduler makes for one task.

    ``offload`` is True when Equation (1) favours the back-end.
    """

    t_frontend: float
    t_backend: float
    c_out: float
    c_in: float

    @property
    def backend_total(self) -> float:
        """Back-end elapsed time including both transfers."""
        return self.t_backend + self.c_out + self.c_in

    @property
    def offload(self) -> bool:
        return should_offload(self.t_frontend, self.t_backend, self.c_out, self.c_in)

    @property
    def best_time(self) -> float:
        """Predicted elapsed time of the better placement."""
        return min(self.t_frontend, self.backend_total)

    @property
    def advantage(self) -> float:
        """Time saved by the better placement over the alternative."""
        return abs(self.t_frontend - self.backend_total)


def _split_slowdown(
    slowdown: "float | TaggedSlowdown | None",
) -> tuple[float | None, Confidence | None]:
    """(value, confidence) of a slowdown input.

    A bare float is taken at face value — the caller asserts the
    number, so it carries CALIBRATED confidence; a
    :class:`~repro.reliability.degrade.TaggedSlowdown` carries its own
    tag; ``None`` passes through (no value, no opinion).
    """
    if slowdown is None:
        return None, None
    if isinstance(slowdown, TaggedSlowdown):
        return slowdown.value, slowdown.confidence
    return float(slowdown), Confidence.CALIBRATED


@dataclass(frozen=True)
class ConfidentPlacement:
    """A :class:`PlacementPrediction` with the confidence of its inputs.

    ``confidence`` is the minimum over the slowdown factors that fed the
    comparison — the Equation (1) verdict is only as trustworthy as its
    least-calibrated input. Every :class:`PlacementPrediction` property
    is forwarded, so a ``ConfidentPlacement`` drops into any call site
    that read the bare prediction.
    """

    prediction: PlacementPrediction
    confidence: Confidence

    @property
    def t_frontend(self) -> float:
        return self.prediction.t_frontend

    @property
    def t_backend(self) -> float:
        return self.prediction.t_backend

    @property
    def c_out(self) -> float:
        return self.prediction.c_out

    @property
    def c_in(self) -> float:
        return self.prediction.c_in

    @property
    def backend_total(self) -> float:
        return self.prediction.backend_total

    @property
    def offload(self) -> bool:
        return self.prediction.offload

    @property
    def best_time(self) -> float:
        return self.prediction.best_time

    @property
    def advantage(self) -> float:
        return self.prediction.advantage


def decide_placement(
    dcomp_frontend: float,
    backend_costs: BackendTaskCosts,
    dcomm_out: float,
    dcomm_in: float,
    comp_slowdown: float | TaggedSlowdown,
    comm_slowdown: float | TaggedSlowdown,
    backend_serial_slowdown: float | TaggedSlowdown | None = None,
) -> ConfidentPlacement:
    """Assemble a confidence-carrying placement from dedicated costs.

    Slowdowns may be bare floats (taken at face value: CALIBRATED) or
    :class:`~repro.reliability.degrade.TaggedSlowdown` values from
    :meth:`~repro.core.runtime.SlowdownManager.comp_slowdown_tagged` /
    :meth:`~repro.core.runtime.SlowdownManager.comm_slowdown_tagged`;
    either way the result is a :class:`ConfidentPlacement` whose
    ``confidence`` is the weakest input's. The placement decision thus
    stays available even when the model has degraded to its analytic
    fallbacks — tagged so the caller knows.

    Parameters
    ----------
    dcomp_frontend:
        Dedicated time of the task on the front-end.
    backend_costs:
        Dedicated cost breakdown of the task on the back-end.
    dcomm_out, dcomm_in:
        Dedicated transfer costs to and from the back-end.
    comp_slowdown:
        Slowdown applied to front-end computation (and, by default, to
        the back-end task's serial stream).
    comm_slowdown:
        Slowdown applied to transfers.
    backend_serial_slowdown:
        Override for the slowdown of the back-end task's serial stream;
        defaults to *comp_slowdown* (they coincide on the Sun/CM2,
        where all contention is front-end CPU contention).
    """
    comp_value, comp_conf = _split_slowdown(comp_slowdown)
    comm_value, comm_conf = _split_slowdown(comm_slowdown)
    serial_value, serial_conf = _split_slowdown(backend_serial_slowdown)
    assert comp_value is not None and comm_value is not None
    tags = [comp_conf, comm_conf]
    if serial_conf is not None:
        tags.append(serial_conf)
    serial_slow = serial_value if serial_value is not None else comp_value
    with _obs.span("predict.placement", kind="prediction") as sp:
        prediction = PlacementPrediction(
            t_frontend=predict_frontend_time(dcomp_frontend, comp_value),
            t_backend=predict_backend_time(backend_costs, serial_slow),
            c_out=predict_comm_cost(dcomm_out, comm_value),
            c_in=predict_comm_cost(dcomm_in, comm_value),
        )
        result = ConfidentPlacement(
            prediction=prediction, confidence=combine_confidence(*tags)
        )
        sp.set("offload", result.offload)
        sp.set("confidence", result.confidence.name)
        sp.set("best_time", result.best_time)
    _obs.inc("prediction.placements")
    return result


def decide_placement_tagged(
    dcomp_frontend: float,
    backend_costs: BackendTaskCosts,
    dcomm_out: float,
    dcomm_in: float,
    comp_slowdown: TaggedSlowdown,
    comm_slowdown: TaggedSlowdown,
    backend_serial_slowdown: TaggedSlowdown | None = None,
) -> ConfidentPlacement:
    """Deprecated alias of :func:`decide_placement`.

    The tagged/untagged split is gone: :func:`decide_placement` now
    accepts floats and :class:`TaggedSlowdown` values alike and always
    returns a :class:`ConfidentPlacement`. This shim only warns and
    forwards.

    .. deprecated:: 1.1
       Call :func:`decide_placement` directly.
    """
    warnings.warn(
        "decide_placement_tagged() is deprecated; decide_placement() now "
        "accepts tagged slowdowns and always returns a ConfidentPlacement",
        DeprecationWarning,
        stacklevel=2,
    )
    return decide_placement(
        dcomp_frontend,
        backend_costs,
        dcomm_out,
        dcomm_in,
        comp_slowdown,
        comm_slowdown,
        backend_serial_slowdown,
    )
