"""Parameter estimation from benchmark measurements.

Implements the paper's calibration procedures — the "system test
suite" that turns raw benchmark timings into the system-dependent
parameters of :mod:`repro.core.params`:

* :func:`estimate_cm2_params` — the two-benchmark procedure of §3.1.1
  for the Sun/CM2 (one bulk transfer for β, one burst of single-word
  transfers for α).
* :func:`fit_linear` — least-squares regression of per-message times on
  message sizes ("the values for α_sun and β_sun can be calculated by
  linear regression on the numbers obtained with a ping-pong
  benchmark", §3.2.1).
* :func:`fit_piecewise` — the two-piece fit with an exhaustive search
  for the best threshold ("the number of possible thresholds is small
  ... and the threshold value can be calculated statically", §3.2.1).
* :func:`build_delay_table` / :func:`build_sized_delay_table` — turn
  contention-generator measurements into ``delay^i`` / ``delay^{i,j}``
  tables.
* :func:`find_saturation_threshold` — locate the message size above
  which the imposed delay is roughly constant (≈1000 words on the
  Sun/Paragon, §3.2.2).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import CalibrationError
from .params import DelayTable, LinearCommParams, PiecewiseCommParams, SizedDelayTable

__all__ = [
    "estimate_cm2_params",
    "fit_linear",
    "fit_piecewise",
    "build_delay_table",
    "build_sized_delay_table",
    "find_saturation_threshold",
    "relative_delays",
]


def estimate_cm2_params(
    bulk_out_time: float,
    bulk_in_time: float,
    startup_burst_time: float,
    bulk_words: float = 1e6,
    burst_messages: float = 1e6,
) -> tuple[LinearCommParams, LinearCommParams]:
    """The Sun/CM2 two-benchmark procedure of §3.1.1.

    Parameters
    ----------
    bulk_out_time:
        Measured time ``C`` of benchmark 1: transfer one array of
        ``bulk_words`` elements Sun → CM2, then 1 word back. Under the
        paper's assumption that the bulk term dominates,
        ``β_sun ≈ bulk_words / C``.
    bulk_in_time:
        Same benchmark with the bulk transfer CM2 → Sun, for ``β_cm2``.
    startup_burst_time:
        Measured time ``C`` of benchmark 2: ``burst_messages``
        single-element arrays each way. With β known and assuming
        ``α_sun = α_cm2``,
        ``α ≈ (C/burst_messages − 1/β_sun − 1/β_cm2) / 2``.
    bulk_words, burst_messages:
        Benchmark sizes (both 10⁶ in the paper).

    Returns
    -------
    (LinearCommParams, LinearCommParams)
        Parameters for the Sun → CM2 and CM2 → Sun directions.
    """
    if bulk_out_time <= 0 or bulk_in_time <= 0:
        raise CalibrationError("bulk benchmark times must be positive")
    if startup_burst_time <= 0:
        raise CalibrationError("startup benchmark time must be positive")
    beta_sun = bulk_words / bulk_out_time
    beta_cm2 = bulk_words / bulk_in_time
    alpha = (startup_burst_time / burst_messages - 1.0 / beta_sun - 1.0 / beta_cm2) / 2.0
    if alpha < 0:
        raise CalibrationError(
            f"startup benchmark implies negative latency (alpha={alpha:.3g}); "
            "the bulk-dominance assumption of the procedure is violated"
        )
    return (
        LinearCommParams(alpha=alpha, beta=beta_sun),
        LinearCommParams(alpha=alpha, beta=beta_cm2),
    )


def _as_xy(sizes: Sequence[float], times: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if x.ndim != 1 or x.shape != y.shape:
        raise CalibrationError(
            f"sizes and times must be 1-D and congruent, got {x.shape} vs {y.shape}"
        )
    if x.size < 2:
        raise CalibrationError("need at least two (size, time) points for a regression")
    if np.unique(x).size < 2:
        raise CalibrationError("need at least two distinct message sizes")
    if np.any(x < 0) or np.any(y < 0):
        raise CalibrationError("sizes and times must be nonnegative")
    return x, y


def fit_linear(sizes: Sequence[float], times: Sequence[float]) -> LinearCommParams:
    """Least-squares fit of per-message time vs. size → (α, β).

    ``times[k]`` is the *per-message* transfer time measured for
    messages of ``sizes[k]`` words (e.g. burst time divided by the
    number of messages in the burst). The slope of the regression is
    ``1/β`` and the intercept is ``α``; a slightly negative intercept
    from measurement noise is clamped to zero.
    """
    x, y = _as_xy(sizes, times)
    slope, intercept = np.polyfit(x, y, 1)
    if slope <= 0:
        raise CalibrationError(
            f"regression slope {slope:.3g} is not positive; transfer time must grow with size"
        )
    return LinearCommParams(alpha=max(0.0, float(intercept)), beta=1.0 / float(slope))


def _sse(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Return (sse, slope, intercept) of the least-squares line."""
    slope, intercept = np.polyfit(x, y, 1)
    resid = y - (slope * x + intercept)
    return float(np.dot(resid, resid)), float(slope), float(intercept)


def fit_piecewise(
    sizes: Sequence[float],
    times: Sequence[float],
    threshold: float | None = None,
) -> PiecewiseCommParams:
    """Two-piece linear fit with exhaustive threshold search (§3.2.1).

    Parameters
    ----------
    sizes, times:
        Per-message times for a sweep of message sizes (the ping-pong
        benchmark output).
    threshold:
        When given, fixes the piece boundary; otherwise every distinct
        measured size is tried as a candidate and the one minimising
        the summed squared error of the two independent fits wins —
        exactly the paper's "exhaustive search" over the (small) set of
        benchmark sizes.
    """
    x, y = _as_xy(sizes, times)
    order = np.argsort(x, kind="stable")
    x, y = x[order], y[order]

    def fit_at(t: float) -> tuple[float, PiecewiseCommParams] | None:
        lo = x <= t
        hi = ~lo
        # Each piece needs >= 2 distinct sizes for a determined fit.
        if np.unique(x[lo]).size < 2 or np.unique(x[hi]).size < 2:
            return None
        sse_lo, slope_lo, icept_lo = _sse(x[lo], y[lo])
        sse_hi, slope_hi, icept_hi = _sse(x[hi], y[hi])
        if slope_lo <= 0 or slope_hi <= 0:
            return None
        params = PiecewiseCommParams(
            threshold=float(t),
            small=LinearCommParams(alpha=max(0.0, icept_lo), beta=1.0 / slope_lo),
            large=LinearCommParams(alpha=max(0.0, icept_hi), beta=1.0 / slope_hi),
        )
        return sse_lo + sse_hi, params

    if threshold is not None:
        result = fit_at(threshold)
        if result is None:
            raise CalibrationError(
                f"threshold {threshold!r} leaves a piece with fewer than two distinct sizes"
            )
        return result[1]

    best: tuple[float, PiecewiseCommParams] | None = None
    for candidate in np.unique(x):
        result = fit_at(candidate)
        if result is not None and (best is None or result[0] < best[0]):
            best = result
    if best is None:
        raise CalibrationError(
            "no threshold admits two determined pieces; need >= 4 distinct sizes"
        )
    return best[1]


def relative_delays(dedicated_time: float, contended_times: Sequence[float]) -> list[float]:
    """``delay^i = contended_i / dedicated − 1`` for each measurement."""
    if dedicated_time <= 0:
        raise CalibrationError(f"dedicated time must be positive, got {dedicated_time!r}")
    delays = []
    for i, t in enumerate(contended_times, start=1):
        if t < 0:
            raise CalibrationError(f"contended time for i={i} is negative: {t!r}")
        delays.append(max(0.0, t / dedicated_time - 1.0))
    return delays


def build_delay_table(
    dedicated_time: float,
    contended_times: Sequence[float],
    label: str = "",
) -> DelayTable:
    """Turn measured times into a :class:`DelayTable`.

    ``contended_times[i-1]`` is the probed operation's duration under
    exactly ``i`` always-active contention generators; the paper
    defines ``delay^i`` as the *relative* delay versus dedicated mode.
    Small negative delays from measurement noise are clamped to zero.
    """
    if not contended_times:
        raise CalibrationError("need measurements for at least i = 1")
    return DelayTable(
        delays=tuple(relative_delays(dedicated_time, contended_times)), label=label
    )


def build_sized_delay_table(
    dedicated_time: float,
    contended_times_by_size: Mapping[int, Sequence[float]],
    small_cutoff: int = 95,
    label: str = "",
) -> SizedDelayTable:
    """Build ``delay^{i,j}`` tables from per-size contention runs.

    ``contended_times_by_size[j][i-1]`` is the probed operation's time
    under ``i`` generators transferring ``j``-word messages.
    """
    if not contended_times_by_size:
        raise CalibrationError("need at least one message-size bucket")
    tables = {
        int(j): build_delay_table(dedicated_time, times, label=f"{label}[j={j}]")
        for j, times in contended_times_by_size.items()
    }
    saturation = find_saturation_threshold(
        sorted(tables), [tables[j].delays[-1] for j in sorted(tables)]
    )
    return SizedDelayTable(tables=tables, small_cutoff=small_cutoff, saturation=saturation)


def find_saturation_threshold(
    sizes: Sequence[float],
    delays: Sequence[float],
    tolerance: float = 0.05,
) -> float | None:
    """Smallest size beyond which the delay stays within *tolerance*.

    The paper observes that "above a threshold on the message size the
    delay imposed is roughly constant" (≈1000 words on the
    Sun/Paragon). Returns the first measured size from which all later
    delays stay within ``tolerance`` (relative) of the final delay, or
    None when the sweep never settles (fewer than two points, or the
    last step still moves more than the tolerance).
    """
    if len(sizes) != len(delays):
        raise CalibrationError("sizes and delays must be congruent")
    if len(sizes) < 2:
        return None
    final = delays[-1]
    scale = max(abs(final), 1e-12)
    for k in range(len(sizes)):
        tail = delays[k:]
        if all(abs(d - final) <= tolerance * scale for d in tail):
            # Require the plateau to contain at least two points so a
            # single noisy final sample does not qualify.
            if len(tail) >= 2:
                return float(sizes[k])
            return None
    return None
