"""Deterministic parallel execution of replication and sweep workloads.

One class, one contract: :class:`~repro.parallel.executor.ParallelExecutor`
maps a picklable callable over items on a process pool and returns
results in input order, falling back to inline execution when
``workers <= 1`` or the pool is unavailable — so enabling parallelism
never changes a single computed value, only the wall-clock. See
``docs/performance.md`` for the determinism contract.

With a :class:`~repro.parallel.containment.FailurePolicy`, the pool
path additionally *contains* worker failures: crashed or wedged tasks
are retried on a rebuilt pool and, past the policy's failure budget,
quarantined — replaced in the result list by a
:class:`~repro.parallel.containment.Quarantined` sentinel instead of
aborting the sweep. See the "Crash tolerance" section of
``docs/reliability.md``.
"""

from .containment import FailurePolicy, Quarantined
from .executor import ParallelExecutor, default_workers

__all__ = ["FailurePolicy", "ParallelExecutor", "Quarantined", "default_workers"]
