"""Deterministic parallel execution of replication and sweep workloads.

One class, one contract: :class:`~repro.parallel.executor.ParallelExecutor`
maps a picklable callable over items on a process pool and returns
results in input order, falling back to inline execution when
``workers <= 1`` or the pool is unavailable — so enabling parallelism
never changes a single computed value, only the wall-clock. See
``docs/performance.md`` for the determinism contract.
"""

from .executor import ParallelExecutor, default_workers

__all__ = ["ParallelExecutor", "default_workers"]
