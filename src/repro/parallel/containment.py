"""Worker-failure containment policy for :class:`ParallelExecutor`.

A replication sweep dispatched onto a process pool inherits the pool's
failure mode: one worker segfaulting (or wedging) raises
``BrokenProcessPool`` and sinks the *entire* map — hours of completed
points included. The containment layer turns that into a local event:

* every task gets a wall-clock **deadline** (optional) so a wedged
  worker cannot stall the sweep forever;
* a broken pool is **rebuilt** and the tasks that were not finished are
  retried — completed results are never re-run;
* a task that keeps killing workers is **quarantined** after
  ``max_task_failures`` infrastructure failures and yields a
  :class:`Quarantined` sentinel (Confidence ``ANALYTIC``) in its result
  slot instead of poisoning the rest of the sweep.

Only *infrastructure* failures — worker death, pool breakage, deadline
expiry — are contained. An exception raised by the mapped callable
itself is a result, not an infrastructure event, and propagates to the
caller exactly as on the plain path.

Containment requires the pool: the inline path (``workers <= 1``) runs
tasks in the calling process, where a crash *is* the caller crashing
and a deadline cannot be enforced without threads; the policy is
documented as a no-op there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reliability.degrade import Confidence

__all__ = ["FailurePolicy", "Quarantined"]


@dataclass(frozen=True)
class FailurePolicy:
    """How :meth:`ParallelExecutor.map` contains worker failures.

    Attributes
    ----------
    deadline:
        Per-wave wall-clock budget in seconds; tasks still running when
        it expires are charged one failure and the pool is rebuilt.
        ``None`` (default) disables the deadline — pool breakage is
        then the only containment trigger.
    max_task_failures:
        Infrastructure failures a single task may accumulate before it
        is quarantined. The default of 3 protects innocent tasks that
        happen to share waves with a poison task: the poison task
        reaches the threshold first (it fails every wave), while an
        innocent neighbour is typically charged at most once.
    max_pool_rebuilds:
        Pool rebuilds allowed for one ``map`` call. When exceeded, all
        still-pending tasks are quarantined at once — the host is too
        unhealthy to keep probing.
    """

    deadline: float | None = None
    max_task_failures: int = 3
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.deadline is not None and not self.deadline > 0:
            raise ValueError(f"deadline must be > 0 seconds, got {self.deadline!r}")
        if self.max_task_failures < 1:
            raise ValueError(
                f"max_task_failures must be >= 1, got {self.max_task_failures!r}"
            )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds!r}"
            )


@dataclass(frozen=True)
class Quarantined:
    """Result slot of a task that containment gave up on.

    Carries enough to degrade gracefully: consumers treat a quarantined
    replication as a missing measurement and tag whatever aggregate it
    feeds with :attr:`confidence` (``ANALYTIC`` — no measured value
    exists for this point, only model fallback).

    Attributes
    ----------
    index:
        Input position of the task within the mapped sequence.
    reason:
        Human-readable cause of the final failure (``"worker crash"``,
        ``"deadline exceeded"``, ``"pool rebuild budget exhausted"``).
    failures:
        Infrastructure failures charged before quarantine.
    """

    index: int
    reason: str
    failures: int

    @property
    def confidence(self) -> Confidence:
        """Confidence of this slot: always ``ANALYTIC`` (no data)."""
        return Confidence.ANALYTIC

    def __bool__(self) -> bool:
        """Quarantined slots are falsy so ``filter(None, ...)`` drops them."""
        return False
