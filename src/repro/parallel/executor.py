"""Deterministic process-pool fan-out for replication sweeps.

The Monte-Carlo layer repeats every contended measurement with
independent stream families; the replications are embarrassingly
parallel *by construction* — replication *k* seeds itself from
``RandomStreams(seed).fork(k)`` regardless of which process runs it.
:class:`ParallelExecutor` exploits that: it maps a picklable callable
over items on a :class:`concurrent.futures.ProcessPoolExecutor` and
returns results **in input order**, so a parallel run is
value-identical to a serial one (the determinism contract
``docs/performance.md`` documents).

Observability survives the fan-out: when the parent is inside
``with observed(...)``, each worker item runs under its own fresh
:class:`~repro.obs.context.ObsContext` (tracer seeded deterministically
from the parent's identity seed and the item index) and ships its
spans and full metric state back with the result; the parent then
merges counters/histograms into its :class:`~repro.obs.MetricsRegistry`
and adopts the spans under the currently active span via
:meth:`~repro.obs.Tracer.absorb`.

Fallbacks keep the executor safe to wire in everywhere: ``workers <= 1``
runs inline (no pool, no pickling), and when the pool cannot be used —
the platform lacks working multiprocessing, or the callable fails to
pickle — the whole map transparently re-runs serially. Mapped
callables must therefore be deterministic and effect-free apart from
their return value; module-level functions or frozen-dataclass
instances pickle, closures and lambdas do not.

Passing a :class:`~repro.parallel.containment.FailurePolicy` upgrades
the pool path to *contained* dispatch: tasks go out in waves of at
most ``workers`` single-task chunks (so every task owns a worker and
blame for a crash or deadline expiry is attributable), a broken pool
is rebuilt and unfinished tasks retried, and tasks that keep failing
are quarantined — their result slot holds a
:class:`~repro.parallel.containment.Quarantined` sentinel instead of
sinking the whole map. See ``docs/reliability.md``.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from typing import Any, Callable, Iterable, Sequence

from ..obs import MetricsRegistry, ObsContext, Tracer, observed
from ..obs import context as _obs
from .containment import FailurePolicy, Quarantined

__all__ = ["ParallelExecutor", "default_workers"]

#: Multiplier decorrelating worker tracer seeds from the parent's
#: (same role as the fork multiplier in ``repro.sim.rng``).
_SEED_MULT = 1_000_003


def default_workers() -> int:
    """CPU count of the host (at least 1) — the ``workers=None`` default."""
    return max(1, os.cpu_count() or 1)


def _worker_seed(parent_seed: int, index: int) -> int:
    """Deterministic tracer seed for worker item *index*.

    Offset by 1 so item 0 does not reproduce the parent tracer's own
    seed — worker span IDs must never collide with parent span IDs.
    """
    return (parent_seed * _SEED_MULT + index + 1) & 0x7FFF_FFFF


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[tuple[int, Any]],
    obs_seed_base: int | None,
) -> list[tuple[int, Any, dict | None, list[dict] | None]]:
    """Execute one chunk of (index, item) pairs inside a worker process.

    With observability requested, every item gets its own context so
    the parent can attribute spans and metrics per item; the payload
    travels back as plain dicts (spans) and a registry ``state_dict``.
    """
    out: list[tuple[int, Any, dict | None, list[dict] | None]] = []
    for index, item in chunk:
        if obs_seed_base is None:
            out.append((index, fn(item), None, None))
            continue
        ctx = ObsContext(
            tracer=Tracer(seed=_worker_seed(obs_seed_base, index)),
            metrics=MetricsRegistry(),
        )
        with observed(ctx):
            value = fn(item)
        out.append(
            (
                index,
                value,
                ctx.metrics.state_dict(),
                [s.to_dict() for s in ctx.tracer.spans],
            )
        )
    return out


class ParallelExecutor:
    """Ordered, deterministic map over a process pool.

    Parameters
    ----------
    workers:
        Worker process count. ``None`` means one per CPU
        (:func:`default_workers`); ``<= 1`` runs everything inline in
        the calling process — the guaranteed-available path.
    chunk_size:
        Items handed to a worker per task. ``None`` picks
        ``ceil(len(items) / workers)`` — one chunk per worker, the
        right shape for replication counts within an order of magnitude
        of the worker count.

    The executor is stateless between :meth:`map` calls (each call
    builds and tears down its own pool), so instances are cheap and
    safely reusable.
    """

    def __init__(self, workers: int | None = None, chunk_size: int | None = None) -> None:
        self.workers = default_workers() if workers is None else int(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        self.chunk_size = chunk_size

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        policy: FailurePolicy | None = None,
    ) -> list[Any]:
        """Apply *fn* to every item; results in input order.

        Serial when ``workers <= 1`` or the pool is unusable; parallel
        otherwise. Exceptions raised by *fn* itself propagate either
        way — only pool-infrastructure failures trigger the serial
        fallback (in which case no partial worker observability is
        merged; the serial re-run produces it all in-process).

        With a *policy*, the pool path contains infrastructure
        failures instead of falling back: crashed or deadline-exceeded
        tasks are retried on a rebuilt pool and, past
        ``policy.max_task_failures``, replaced by a
        :class:`~repro.parallel.containment.Quarantined` sentinel in
        the result list. The policy is a documented no-op on the
        inline path (a crash there *is* the caller crashing; nothing
        to contain).
        """
        seq = list(items)
        if self.workers <= 1 or len(seq) <= 1:
            return [fn(item) for item in seq]
        try:
            if policy is not None:
                return self._map_contained(fn, seq, policy)
            return self._map_pool(fn, seq)
        except _FALLBACK_ERRORS:
            return [fn(item) for item in seq]

    # -- internals ----------------------------------------------------------

    def _map_pool(self, fn: Callable[[Any], Any], seq: list[Any]) -> list[Any]:
        from concurrent.futures import ProcessPoolExecutor

        ctx = _obs.current()
        obs_seed_base = ctx.tracer.seed if ctx is not None else None
        indexed = list(enumerate(seq))
        size = self.chunk_size or -(-len(indexed) // self.workers)
        chunks = [indexed[i : i + size] for i in range(0, len(indexed), size)]
        results: list[tuple[int, Any, dict | None, list[dict] | None]] = []
        with ProcessPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
            futures = [
                pool.submit(_run_chunk, fn, chunk, obs_seed_base) for chunk in chunks
            ]
            for future in futures:
                results.extend(future.result())
        results.sort(key=lambda r: r[0])
        if ctx is not None:
            self._merge_obs(ctx, results)
        return [value for _, value, _, _ in results]

    def _map_contained(
        self, fn: Callable[[Any], Any], seq: list[Any], policy: FailurePolicy
    ) -> list[Any]:
        """Pool map with crash/deadline containment (see module docstring).

        Dispatch is wave-based: at most ``workers`` tasks in flight,
        each as its own single-task chunk, so every task owns a worker
        for the whole wave. That makes the wave deadline an effective
        per-task deadline and keeps blame attribution local — when the
        pool breaks, only the (at most ``workers``) unfinished tasks
        of the current wave are charged, never the whole backlog.
        """
        from concurrent.futures import ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        ctx = _obs.current()
        obs_seed_base = ctx.tracer.seed if ctx is not None else None
        slots: dict[int, tuple[int, Any, dict | None, list[dict] | None]] = {}
        pending: deque[tuple[int, Any]] = deque(enumerate(seq))
        failures: dict[int, int] = {}
        rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while pending:
                wave = [pending.popleft() for _ in range(min(self.workers, len(pending)))]
                futures = {
                    pool.submit(_run_chunk, fn, [task], obs_seed_base): task
                    for task in wave
                }
                done, not_done = wait(futures, timeout=policy.deadline)
                casualties: list[tuple[tuple[int, Any], str]] = []
                for future in done:
                    task = futures[future]
                    error = future.exception()
                    if error is None:
                        slots[task[0]] = future.result()[0]
                    elif isinstance(error, BrokenProcessPool):
                        casualties.append((task, "worker crash"))
                        _obs.inc("parallel.worker_crashes")
                    else:
                        # The mapped callable raised: that is a result,
                        # not an infrastructure event — propagate just
                        # like the plain pool path would.
                        self._teardown(pool, kill=True)
                        raise error
                for future in not_done:
                    future.cancel()
                    casualties.append((futures[future], "deadline exceeded"))
                    _obs.inc("parallel.deadline_exceeded")
                if not casualties:
                    continue
                # Charged tasks mean dead or wedged workers: the pool
                # cannot be trusted for the next wave. Kill and rebuild.
                self._teardown(pool, kill=True)
                rebuilds += 1
                _obs.inc("parallel.pool_rebuilds")
                retry: list[tuple[int, Any]] = []
                for task, reason in casualties:
                    count = failures[task[0]] = failures.get(task[0], 0) + 1
                    if count >= policy.max_task_failures:
                        slots[task[0]] = (
                            task[0],
                            Quarantined(index=task[0], reason=reason, failures=count),
                            None,
                            None,
                        )
                        _obs.inc("parallel.quarantines")
                    else:
                        retry.append(task)
                        _obs.inc("parallel.task_retries")
                if rebuilds > policy.max_pool_rebuilds:
                    for index, _item in [*retry, *pending]:
                        slots[index] = (
                            index,
                            Quarantined(
                                index=index,
                                reason="pool rebuild budget exhausted",
                                failures=failures.get(index, 0),
                            ),
                            None,
                            None,
                        )
                        _obs.inc("parallel.quarantines")
                    pending.clear()
                    retry.clear()
                pending.extendleft(reversed(retry))
                if pending:
                    pool = ProcessPoolExecutor(max_workers=self.workers)
        finally:
            self._teardown(pool, kill=False)
        results = [slots[i] for i in range(len(seq))]
        if ctx is not None:
            self._merge_obs(ctx, results)
        return [value for _, value, _, _ in results]

    @staticmethod
    def _teardown(pool: Any, kill: bool) -> None:
        """Shut a pool down; with *kill*, terminate workers first.

        Killing matters for wedged workers: a plain ``shutdown`` would
        block on (or leak) a worker stuck in a hot loop. Reaching into
        ``_processes`` is unavoidable — the public API offers no way to
        abandon running workers — and is guarded so a stdlib layout
        change degrades to a plain shutdown rather than an error.
        """
        if kill:
            try:
                processes = dict(getattr(pool, "_processes", None) or {})
                for proc in processes.values():
                    proc.terminate()
            except Exception:  # pragma: no cover - layout-change guard
                pass
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _merge_obs(
        ctx: ObsContext,
        results: list[tuple[int, Any, dict | None, list[dict] | None]],
    ) -> None:
        from ..obs import Span

        for _, _, metrics_state, span_dicts in results:
            if metrics_state is not None:
                ctx.metrics.merge_state(metrics_state)
            if span_dicts:
                ctx.tracer.absorb([Span.from_dict(d) for d in span_dicts])


def _fallback_errors() -> tuple[type[BaseException], ...]:
    errors: list[type[BaseException]] = [
        pickle.PicklingError,
        AttributeError,  # unpicklable local/lambda callables
        TypeError,  # "cannot pickle ..." objects
        OSError,  # no fork/sem support on the platform
        ImportError,
    ]
    try:
        from concurrent.futures.process import BrokenProcessPool

        errors.append(BrokenProcessPool)
    except ImportError:  # pragma: no cover - stdlib always has it
        pass
    return tuple(errors)


_FALLBACK_ERRORS = _fallback_errors()
