"""Network link model with FIFO contention.

The Sun/Paragon platform's Ethernet is modeled as a half-duplex shared
medium: messages from all applications, in both directions, are
serialised through a single FIFO channel. Each message occupies the
wire for a duration given by a ground-truth *wire-time curve* (a
function of the message size in words), which the platform specs make
piecewise linear — the physical origin of the piecewise cost model the
paper fits in §3.2.1.

Contention for the link is therefore *queueing* contention: while one
application's message is on the wire, everybody else's messages wait.
The analytical model approximates this queueing with the multiplicative
``delay_comm`` factors; the gap between FIFO queueing and that
approximation is a deliberate source of model error, as on the real
platform.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from typing import TYPE_CHECKING

from ..units import check_nonnegative
from .engine import Event, Simulator
from .resources import FifoResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import LinkFaultModel

__all__ = ["Link", "WireTime"]

#: Type of a ground-truth wire-occupancy function: seconds as a function
#: of message size in words.
WireTime = Callable[[float], float]


class Link:
    """A half-duplex (or optionally full-duplex) FIFO message channel.

    Parameters
    ----------
    sim:
        Owning simulator.
    wire_time:
        Ground-truth occupancy (seconds) for a message of a given size
        in words. Must be nonnegative for all sizes used.
    full_duplex:
        When True, each direction has its own independent channel.
        The 1996 Ethernet between the Sun and the Paragon was a shared
        medium, so experiments use the default half-duplex mode.
    name:
        Label for monitoring output.
    """

    def __init__(
        self,
        sim: Simulator,
        wire_time: WireTime,
        full_duplex: bool = False,
        name: str = "link",
        faults: "LinkFaultModel | None" = None,
    ) -> None:
        self.sim = sim
        self.wire_time = wire_time
        self.full_duplex = full_duplex
        self.name = name
        #: Optional chaos hook (see :mod:`repro.reliability.faults`):
        #: perturbs per-message wire occupancy to model degradation and
        #: drop/retransmit faults. ``None`` (the default) leaves the
        #: link's behaviour byte-for-byte identical to a fault-free run.
        self.faults = faults
        if full_duplex:
            self._channels = {
                "out": FifoResource(sim, 1, name=f"{name}-out"),
                "in": FifoResource(sim, 1, name=f"{name}-in"),
            }
        else:
            shared = FifoResource(sim, 1, name=name)
            self._channels = {"out": shared, "in": shared}
        self.messages_sent = 0
        self.words_sent = 0.0
        self.wire_busy = 0.0

    def _channel(self, direction: str) -> FifoResource:
        try:
            return self._channels[direction]
        except KeyError:
            raise ValueError(f"direction must be 'out' or 'in', got {direction!r}") from None

    def occupancy(self, size_words: float) -> float:
        """Ground-truth wire time for one message of *size_words*."""
        size_words = check_nonnegative(size_words, "size_words")
        t = float(self.wire_time(size_words))
        if t < 0:
            raise ValueError(f"wire_time returned negative occupancy {t!r} for size {size_words!r}")
        return t

    def transfer(self, size_words: float, direction: str = "out") -> Generator[Event, Any, float]:
        """Generator: occupy the wire FIFO for one message.

        Use as ``wait = yield from link.transfer(200, "out")`` inside a
        process; returns the queueing delay experienced (seconds spent
        waiting for the wire, excluding the wire occupancy itself).

        The wire is a capacity-1 FIFO with a hold time known at
        submission, so the drain is computed in closed form
        (:meth:`~repro.sim.resources.FifoResource.occupy`): one
        pre-scheduled completion event per message instead of a
        request/grant/hold/release exchange. The completion instants
        are identical to the event-stepped implementation. One
        behavioural difference: the message's wire reservation is
        committed at submission, so interrupting the sending process
        mid-transfer no longer vacates its slot in the FIFO.
        """
        channel = self._channel(direction)
        hold = self.occupancy(size_words)
        if self.faults is not None:
            hold = self.faults.perturb_wire(size_words, hold)
        done, queued = channel.occupy(hold)
        yield done
        self.messages_sent += 1
        self.words_sent += size_words
        self.wire_busy += hold
        return queued

    def utilization(self, horizon: float | None = None) -> float:
        """Fraction of time the wire carried a message."""
        t = horizon if horizon is not None else self.sim.now
        if t <= 0:
            return 0.0
        if self.full_duplex:
            return self.wire_busy / (2 * t)
        return self.wire_busy / t

    def mean_queue_length(self) -> float:
        """Time-averaged number of messages waiting for the wire."""
        values = [ch.mean_queue_length() for ch in set(self._channels.values())]
        return sum(values)
