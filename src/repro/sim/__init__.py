"""Discrete-event simulation substrate.

This subpackage is the reproduction's stand-in for the physical 1996
hardware: a generator-coroutine DES kernel (:mod:`.engine`), waitable
resources (:mod:`.resources`), a time-shared CPU (:mod:`.cpu`), a
contended network link (:mod:`.link`), deterministic random streams
(:mod:`.rng`) and measurement instruments (:mod:`.monitors`).

:mod:`.vector` is the struct-of-arrays Monte-Carlo backend: it runs
many independent replications ("lanes") of a supported Sun–Paragon
workload as NumPy arrays advanced in lockstep, bit-compatible (to
floating-point accumulation order, ≤ 1e-9 relative) with running the
object engine once per lane.
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from .cpu import TimeSharedCPU
from .link import Link
from .monitors import Interval, Tally, Timeline, TimeWeighted
from .resources import FifoResource, Request, Store
from .rng import RandomStreams
from .vector import (
    VectorBurstProbe,
    VectorComputeProbe,
    VectorContender,
    VectorCyclicProbe,
    run_lanes,
    unsupported_reason,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FifoResource",
    "Interrupt",
    "Interval",
    "Link",
    "Process",
    "PRIORITY_LATE",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "RandomStreams",
    "Request",
    "Simulator",
    "Store",
    "Tally",
    "Timeout",
    "Timeline",
    "TimeSharedCPU",
    "TimeWeighted",
    "VectorBurstProbe",
    "VectorComputeProbe",
    "VectorContender",
    "VectorCyclicProbe",
    "run_lanes",
    "unsupported_reason",
]
