"""Measurement instruments for simulation runs.

These are the reproduction's "stopwatches and strip charts": simple
accumulators that applications and platforms feed while running, from
which experiments extract the numbers the paper reports (elapsed times,
busy fractions, serial/parallel/idle breakdowns for Figure 2).

The scalar accumulators :class:`Tally` and :class:`TimeWeighted` now
live in :mod:`repro.obs.metrics` — the observability subsystem
generalises them into named counters/gauges/histograms with snapshots
and diffing — and are re-exported here unchanged for every existing
import site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..obs.metrics import Tally, TimeWeighted

__all__ = ["Tally", "TimeWeighted", "Timeline", "Interval"]


@dataclass(frozen=True)
class Interval:
    """A labelled span of simulated time (one row of a Figure-2 chart)."""

    start: float
    end: float
    actor: str
    state: str
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """An ordered record of labelled intervals, per actor.

    Platforms append intervals while executing instruction traces; the
    Figure 2 reproduction renders them side by side, and
    :meth:`time_in_state` computes the ``didle``/``dserial`` breakdowns
    of §3.1.2.
    """

    intervals: list[Interval] = field(default_factory=list)

    def add(self, start: float, end: float, actor: str, state: str, detail: str = "") -> None:
        """Append one interval (must be well-formed: end >= start)."""
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start!r}, {end!r}]")
        if end > start:  # zero-length intervals carry no information
            self.intervals.append(Interval(start, end, actor, state, detail))

    def actors(self) -> list[str]:
        """Distinct actor names in first-appearance order."""
        seen: dict[str, None] = {}
        for iv in self.intervals:
            seen.setdefault(iv.actor, None)
        return list(seen)

    def for_actor(self, actor: str) -> Iterator[Interval]:
        """Iterate the intervals belonging to *actor*, in order."""
        return (iv for iv in self.intervals if iv.actor == actor)

    def time_in_state(self, actor: str, state: str) -> float:
        """Total duration *actor* spent in *state*."""
        return sum(iv.duration for iv in self.for_actor(actor) if iv.state == state)

    @property
    def span(self) -> float:
        """Total time covered, from the earliest start to the latest end."""
        if not self.intervals:
            return 0.0
        return max(iv.end for iv in self.intervals) - min(iv.start for iv in self.intervals)

    def render_gantt(self, width: int = 64, glyphs: dict[str, str] | None = None) -> str:
        """ASCII Gantt chart: one row per actor, one glyph per state.

        Figure 2 of the paper, as text. States map to glyphs either via
        *glyphs* or by first letter; gaps render as spaces; overlapping
        intervals resolve to the later-recorded one.
        """
        if not self.intervals:
            return "(empty timeline)"
        if width < 8:
            raise ValueError("width must be >= 8")
        t0 = min(iv.start for iv in self.intervals)
        t1 = max(iv.end for iv in self.intervals)
        scale = (t1 - t0) / width
        states = sorted({iv.state for iv in self.intervals})
        mapping = dict(glyphs or {})
        for state in states:
            if state not in mapping:
                candidate = state[0]
                while candidate in mapping.values():
                    candidate = chr(ord(candidate) + 1)
                mapping[state] = candidate
        label_width = max(len(a) for a in self.actors())
        lines = []
        for actor in self.actors():
            row = [" "] * width
            for iv in self.for_actor(actor):
                lo = int((iv.start - t0) / scale) if scale else 0
                hi = int(-(-(iv.end - t0) // scale)) if scale else width
                for col in range(max(0, lo), min(width, max(hi, lo + 1))):
                    row[col] = mapping[iv.state]
            lines.append(f"{actor:>{label_width}} |{''.join(row)}|")
        legend = "   ".join(f"{g} = {s}" for s, g in sorted(mapping.items(), key=lambda kv: kv[0]))
        lines.append(f"{'':>{label_width}}  {legend}")
        lines.append(f"{'':>{label_width}}  t = {t0:.4g} .. {t1:.4g} s")
        return "\n".join(lines)
