"""Measurement instruments for simulation runs.

These are the reproduction's "stopwatches and strip charts": simple
accumulators that applications and platforms feed while running, from
which experiments extract the numbers the paper reports (elapsed times,
busy fractions, serial/parallel/idle breakdowns for Figure 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Tally", "TimeWeighted", "Timeline", "Interval"]


class Tally:
    """Streaming count/mean/variance of observations (Welford's method)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for v in values:
            self.record(v)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN with fewer than two samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    def __repr__(self) -> str:
        return f"Tally(n={self.count}, mean={self.mean:.6g})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    ``record(t, v)`` declares that the signal takes value *v* from time
    *t* onward; the time average over ``[t0, horizon]`` is then
    available from :meth:`average`.
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_t = float(start_time)
        self._start = float(start_time)
        self._value = float(initial)
        self._area = 0.0

    @property
    def current(self) -> float:
        """The most recently recorded value."""
        return self._value

    def record(self, t: float, value: float) -> None:
        """Set the signal to *value* at time *t* (t must not decrease)."""
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t!r} < {self._last_t!r}")
        self._area += (t - self._last_t) * self._value
        self._last_t = t
        self._value = float(value)

    def average(self, horizon: float) -> float:
        """Time average over ``[start, horizon]``."""
        if horizon < self._last_t:
            raise ValueError("horizon precedes the last recorded change")
        span = horizon - self._start
        if span <= 0:
            return self._value
        area = self._area + (horizon - self._last_t) * self._value
        return area / span


@dataclass(frozen=True)
class Interval:
    """A labelled span of simulated time (one row of a Figure-2 chart)."""

    start: float
    end: float
    actor: str
    state: str
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """An ordered record of labelled intervals, per actor.

    Platforms append intervals while executing instruction traces; the
    Figure 2 reproduction renders them side by side, and
    :meth:`time_in_state` computes the ``didle``/``dserial`` breakdowns
    of §3.1.2.
    """

    intervals: list[Interval] = field(default_factory=list)

    def add(self, start: float, end: float, actor: str, state: str, detail: str = "") -> None:
        """Append one interval (must be well-formed: end >= start)."""
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start!r}, {end!r}]")
        if end > start:  # zero-length intervals carry no information
            self.intervals.append(Interval(start, end, actor, state, detail))

    def actors(self) -> list[str]:
        """Distinct actor names in first-appearance order."""
        seen: dict[str, None] = {}
        for iv in self.intervals:
            seen.setdefault(iv.actor, None)
        return list(seen)

    def for_actor(self, actor: str) -> Iterator[Interval]:
        """Iterate the intervals belonging to *actor*, in order."""
        return (iv for iv in self.intervals if iv.actor == actor)

    def time_in_state(self, actor: str, state: str) -> float:
        """Total duration *actor* spent in *state*."""
        return sum(iv.duration for iv in self.for_actor(actor) if iv.state == state)

    @property
    def span(self) -> float:
        """Total time covered, from the earliest start to the latest end."""
        if not self.intervals:
            return 0.0
        return max(iv.end for iv in self.intervals) - min(iv.start for iv in self.intervals)

    def render_gantt(self, width: int = 64, glyphs: dict[str, str] | None = None) -> str:
        """ASCII Gantt chart: one row per actor, one glyph per state.

        Figure 2 of the paper, as text. States map to glyphs either via
        *glyphs* or by first letter; gaps render as spaces; overlapping
        intervals resolve to the later-recorded one.
        """
        if not self.intervals:
            return "(empty timeline)"
        if width < 8:
            raise ValueError("width must be >= 8")
        t0 = min(iv.start for iv in self.intervals)
        t1 = max(iv.end for iv in self.intervals)
        scale = (t1 - t0) / width
        states = sorted({iv.state for iv in self.intervals})
        mapping = dict(glyphs or {})
        for state in states:
            if state not in mapping:
                candidate = state[0]
                while candidate in mapping.values():
                    candidate = chr(ord(candidate) + 1)
                mapping[state] = candidate
        label_width = max(len(a) for a in self.actors())
        lines = []
        for actor in self.actors():
            row = [" "] * width
            for iv in self.for_actor(actor):
                lo = int((iv.start - t0) / scale) if scale else 0
                hi = int(-(-(iv.end - t0) // scale)) if scale else width
                for col in range(max(0, lo), min(width, max(hi, lo + 1))):
                    row[col] = mapping[iv.state]
            lines.append(f"{actor:>{label_width}} |{''.join(row)}|")
        legend = "   ".join(f"{g} = {s}" for s, g in sorted(mapping.items(), key=lambda kv: kv[0]))
        lines.append(f"{'':>{label_width}}  {legend}")
        lines.append(f"{'':>{label_width}}  t = {t0:.4g} .. {t1:.4g} s")
        return "\n".join(lines)
