"""Deterministic, named random-number streams for simulations.

Monte-Carlo experiments need (a) reproducibility across runs and (b)
*independence between components*: adding a new contender must not
perturb the random numbers drawn by an existing one. Both are obtained
by deriving one :class:`numpy.random.Generator` per ``(seed, name)``
pair with :class:`numpy.random.SeedSequence` spawning keyed on the
stable hash of the stream name.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


def _stable_key(name: str) -> list[int]:
    """Map a stream name to a deterministic list of 32-bit integers.

    Python's builtin ``hash`` is salted per-process, so we use BLAKE2
    for a process-independent key.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


class RandomStreams:
    """A factory of independent named random generators.

    Parameters
    ----------
    seed:
        Master seed for the whole simulation run. Two
        :class:`RandomStreams` built with the same seed hand out
        identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> g1 = streams.get("contender-0")
    >>> g2 = streams.get("contender-1")
    >>> g1 is streams.get("contender-0")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=_stable_key(name))
            gen = np.random.Generator(np.random.PCG64(ss))
            self._cache[name] = gen
        return gen

    def fork(self, salt: int) -> "RandomStreams":
        """Derive a new independent family of streams (for repetitions).

        ``fork(k)`` is used to give repetition *k* of an experiment its
        own universe of streams while remaining a pure function of
        ``(seed, k)``.
        """
        return RandomStreams(seed=(self.seed * 1_000_003 + int(salt)) & 0x7FFF_FFFF)
