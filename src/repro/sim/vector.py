"""Struct-of-arrays Monte-Carlo backend: many replications in lockstep.

The event-horizon kernel (see :mod:`repro.sim.cpu`) made one run
O(#arrivals); this module makes *many runs at once* cheap. N independent
lanes — replications of one scenario, or *different sweep points* of a
figure batched side by side — are laid out as arrays of per-lane
clocks, CPU epoch states and link-horizon completions, and all lanes
advance together: each iteration takes every live lane to its own next
event instant and applies the state transitions with a handful of NumPy
ops, instead of dispatching Python simulation objects per run.

Three structural tricks keep the per-event cost at array-op scale:

* **Collapsed pipelines.** A message fragment's non-resource waits
  (node handling, the completion of an already-claimed wire or service
  slot) are priced the moment they become determined, so a fragment
  costs two or three events instead of five. Resources are still
  *claimed* at exactly the instants the object engine claims them —
  the wire at conversion completion, the service node at wire
  completion — so FIFO horizons are identical.
* **Closed-form CPU epochs.** Both front-end disciplines advance in
  epochs, never per-quantum or per-charge. The fluid ``ps`` limit
  carries a virtual service clock ``V`` (``dV = rate · dt``) and each
  job a target ``finish_v = V(submit) + work``; the ``rr`` discipline
  ports the object engine's :class:`~repro.sim.cpu._RRPlan` closed
  forms (head slice, one switch-patterned cycle, affine slice starts,
  integer rotation skips) to per-lane arrays, sharing
  :data:`repro.sim.cpu.EPSILON` and the
  :func:`repro.sim.cpu.rr_completion_slices` arithmetic operation for
  operation.
* **A row per (actor, event class).** Waits and CPU jobs live in
  ``(rows, lanes)`` matrices whose row *identity* names the handler —
  "contender 1's send conversion finished", "the probe's node handling
  elapsed" — so finding this iteration's work is one matrix compare
  and there is no per-event phase bookkeeping at all. ``inf`` encodes
  "nothing scheduled" in both matrices.

Sweep-level lanes
-----------------
Every per-actor constant is a *per-lane* array, so one batch can mix
heterogeneous points: :func:`run_sweep` takes one :class:`SweepPoint`
per lane (platform spec + contenders + probe) and pads ragged batches —
points with fewer contenders, or without the OS daemon — with absent
actors whose rows simply stay ``inf`` forever. Because no computation
ever crosses lanes, a lane's trajectory is bitwise independent of its
batch-mates: a ragged sweep equals the concatenation of its per-point
batches, which is what lets ``figures.py`` collapse a whole fig5 sweep
into one batch and ``repro.parallel`` workers split lane ranges.

Scope
-----
The vector engine covers the scenario family the replication sweeps
actually run: a :class:`~repro.platforms.specs.SunParagonSpec` platform
with a ``ps`` *or* ``rr`` front-end CPU (quantum, context switch,
session continuation and all), the OS daemon, ``alternating``
contenders, and a ``message_burst`` / ``frontend_program`` /
``cyclic_program`` probe, in both ``1hop`` and ``2hops`` modes.
Anything else (CM2, fault injection, priorities) is the object
engine's job — :func:`repro.experiments.simulate.simulate` falls back
automatically.

Correctness is anchored the same way PR 5 anchored event horizons: the
per-lane arithmetic mirrors the object engine operation for operation
(same ``max(now, free_at) + hold`` wire horizons, same named RNG
streams and draw order, same RR charge-on-end settlement), and the
differential suites in ``tests/sim/test_vector.py`` hold the two
engines to 1e-9 agreement over 240+ seeded runs per discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import WorkloadError
from .cpu import EPSILON as _EPS
from .rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platforms.specs import SunParagonSpec

__all__ = [
    "VectorContender",
    "VectorBurstProbe",
    "VectorComputeProbe",
    "VectorCyclicProbe",
    "SweepPoint",
    "unsupported_reason",
    "run_lanes",
    "run_sweep",
]

# Actor kinds.
_K_DAEMON, _K_ALT, _K_BURST, _K_COMPUTE, _K_CYCLIC = range(5)

#: Queue-sequence sentinel: "this row is not queued". Any real sequence
#: number is smaller, so argmin/argsort put queued rows first.
_SENT = np.int64(2**62)


@dataclass(frozen=True)
class VectorContender:
    """One :func:`repro.apps.contender.alternating` application.

    ``tag`` is the CPU session tag the object path submits work under
    (the application profile's name). It only influences the ``rr``
    discipline's context-switch/session behaviour; ``None`` gives the
    contender a unique private session identity.
    """

    comm_fraction: float
    message_size: float
    stream: str
    mean_cycle: float = 0.25
    direction: str = "both"
    mode: str = "1hop"
    tag: str | None = None


@dataclass(frozen=True)
class VectorBurstProbe:
    """The :func:`repro.apps.burst.message_burst` probe."""

    size_words: float
    count: int
    direction: str = "out"
    mode: str = "1hop"


@dataclass(frozen=True)
class VectorComputeProbe:
    """The :func:`repro.apps.program.frontend_program` probe."""

    work: float


@dataclass(frozen=True)
class VectorCyclicProbe:
    """The :func:`repro.apps.program.cyclic_program` probe."""

    cycles: int
    comp_per_cycle: float
    messages_per_cycle: int
    message_size: float
    mode: str = "1hop"


_Probe = VectorBurstProbe | VectorComputeProbe | VectorCyclicProbe

#: Session tags the object-engine probes submit CPU work under.
_PROBE_TAGS = {_K_BURST: "burst", _K_COMPUTE: "task", _K_CYCLIC: "cyclic"}


@dataclass(frozen=True)
class SweepPoint:
    """One lane's scenario: platform spec, contenders, probe."""

    spec: "SunParagonSpec"
    contenders: tuple[VectorContender, ...]
    probe: _Probe


def unsupported_reason(
    spec: "SunParagonSpec",
    contenders: Sequence[VectorContender],
    probe: _Probe,
) -> str | None:
    """Why the vector engine cannot run this scenario (None = it can).

    The checks mirror the coverage statement in the module docstring;
    callers use the reason string for the counted fallback to the
    object backend.
    """
    if type(spec).__name__ != "SunParagonSpec":
        return f"platform spec {type(spec).__name__} (only SunParagonSpec is vectorized)"
    if spec.cpu.discipline not in ("ps", "rr"):
        return f"cpu discipline {spec.cpu.discipline!r} (only 'ps' and 'rr' are vectorized)"
    if not isinstance(probe, (VectorBurstProbe, VectorComputeProbe, VectorCyclicProbe)):
        return f"probe {type(probe).__name__} has no vectorized form"
    modes = {c.mode for c in contenders}
    modes.add(getattr(probe, "mode", "1hop"))
    if "2hops" in modes and spec.service_node_capacity != 1:
        return f"service_node_capacity={spec.service_node_capacity} (2hops needs capacity 1)"
    if spec.cpu.discipline == "rr" and any(c.tag is None for c in contenders):
        # The oracle keys RR sessions on job tags, where an untagged
        # job's ``None`` both matches other untagged jobs and never
        # charges a context switch; the vectorized tag ids are per-slot.
        return "rr discipline needs tagged contenders (sessions are tag-keyed)"
    return None


def _message_params(spec: "SunParagonSpec", size: float, mode: str) -> tuple[int, float, float, float]:
    """Per-fragment constants of one message: (n_frags, conv, hold, nx)."""
    frags = spec.wire.fragment_sizes(size)
    frag = frags[0]
    conv = spec.conversion_cpu_time(frag)
    hold = float(spec.wire.occupancy(frag))
    nx = spec.nx_time(frag) if mode == "2hops" else 0.0
    return len(frags), conv, hold, nx


_DIR_CODES = {"out": 0, "in": 1, "both": 2}


class _PActor:
    """One actor's scalar constants for one sweep point."""

    __slots__ = (
        "kind", "stream", "tag", "interval", "work", "comp_target",
        "comm_target", "per_message", "dir_code", "two_hops", "n_frags",
        "conv", "hold", "nx", "nh", "count", "cycles", "msgs_per_cycle",
    )

    def __init__(self) -> None:
        self.kind = _K_DAEMON
        self.stream: str | None = None
        self.tag: str | None = None
        self.interval = self.work = 0.0
        self.comp_target = self.comm_target = self.per_message = 0.0
        self.dir_code = 0  # 0 = out, 1 = in, 2 = both
        self.two_hops = False
        self.n_frags = 0
        self.conv = self.hold = self.nx = self.nh = 0.0
        self.count = self.cycles = self.msgs_per_cycle = 0


class _PointPlan:
    """A compiled sweep point: validated per-actor scalars."""

    __slots__ = ("daemon", "cons", "probe", "cap", "q", "cs", "discipline")

    def __init__(self, point: SweepPoint) -> None:
        spec, contenders, probe = point.spec, point.contenders, point.probe
        nh = spec.node_handling
        self.cap = spec.cpu.capacity
        self.q = spec.cpu.quantum
        self.cs = spec.cpu.context_switch
        self.discipline = spec.cpu.discipline
        self.daemon: _PActor | None = None
        if spec.cpu.daemon_interval > 0 and spec.cpu.daemon_work > 0:
            a = _PActor()
            a.kind = _K_DAEMON
            a.interval = spec.cpu.daemon_interval
            a.work = spec.cpu.daemon_work
            a.stream = "sunparagon/os-daemon"
            a.tag = "_os"
            self.daemon = a
        self.cons: list[_PActor] = []
        for c in contenders:
            if not 0.0 <= c.comm_fraction <= 1.0:
                raise WorkloadError(f"comm_fraction must be in [0, 1], got {c.comm_fraction!r}")
            if c.mean_cycle <= 0:
                raise WorkloadError(f"mean_cycle must be > 0, got {c.mean_cycle!r}")
            if c.direction not in _DIR_CODES:
                raise WorkloadError(f"direction must be 'out', 'in' or 'both', got {c.direction!r}")
            if c.comm_fraction > 0 and c.message_size <= 0:
                raise WorkloadError("a communicating contender needs a positive message size")
            a = _PActor()
            a.kind = _K_ALT
            a.stream = c.stream
            a.tag = c.tag
            a.comp_target = (1.0 - c.comm_fraction) * c.mean_cycle
            a.comm_target = c.comm_fraction * c.mean_cycle
            a.dir_code = _DIR_CODES[c.direction]
            a.two_hops = c.mode == "2hops"
            a.nh = nh
            if c.comm_fraction > 0:
                a.per_message = spec.message_dedicated_time(c.message_size, c.mode)
                a.n_frags, a.conv, a.hold, a.nx = _message_params(spec, c.message_size, c.mode)
            self.cons.append(a)
        p = _PActor()
        if isinstance(probe, VectorBurstProbe):
            if probe.count < 1:
                raise WorkloadError(f"burst needs >= 1 message, got {probe.count!r}")
            if probe.direction not in ("out", "in"):
                raise WorkloadError(f"direction must be 'out' or 'in', got {probe.direction!r}")
            p.kind = _K_BURST
            p.count = probe.count
            p.dir_code = _DIR_CODES[probe.direction]
            p.two_hops = probe.mode == "2hops"
            p.nh = nh
            p.n_frags, p.conv, p.hold, p.nx = _message_params(spec, probe.size_words, probe.mode)
        elif isinstance(probe, VectorComputeProbe):
            if probe.work < 0:
                raise WorkloadError(f"work must be >= 0, got {probe.work!r}")
            p.kind = _K_COMPUTE
            p.work = probe.work
        else:
            if probe.cycles < 1:
                raise WorkloadError(f"need >= 1 cycle, got {probe.cycles!r}")
            if probe.comp_per_cycle < 0 or probe.messages_per_cycle < 0:
                raise WorkloadError("cycle parameters must be >= 0")
            p.kind = _K_CYCLIC
            p.cycles = probe.cycles
            p.work = probe.comp_per_cycle
            p.msgs_per_cycle = probe.messages_per_cycle
            p.dir_code = 2  # cyclic_program alternates out/in
            p.two_hops = probe.mode == "2hops"
            p.nh = nh
            if probe.messages_per_cycle > 0:
                p.n_frags, p.conv, p.hold, p.nx = _message_params(
                    spec, probe.message_size, probe.mode
                )
        p.tag = _PROBE_TAGS[p.kind]
        self.probe = p


class _Actor:
    """Compiled per-actor, per-*lane* constants (struct of arrays).

    Sweep batches mix heterogeneous points, so every constant the old
    single-point compiler kept as a scalar is a ``(lanes,)`` array here
    (uniform batches simply broadcast the same value into every lane —
    one code path, so a sweep lane is bitwise identical to the same
    point run alone). ``present`` pads ragged batches: absent lanes are
    never initialised and their rows stay ``inf`` forever.

    The ``r_*`` / ``w_*`` fields are this actor's row indices into the
    lane matrices: ``r_*`` rows hold CPU jobs, ``w_*`` rows hold wake
    instants (-1 = no lane of this actor uses that event class).
    """

    __slots__ = (
        "kind", "is_probe", "present", "streams", "tag_id",
        "interval", "work", "comp_target", "comm_target", "per_message",
        "dir_code", "two_hops", "n_frags", "conv", "hold", "nx", "nh",
        "count", "cycles", "msgs_per_cycle",
        "r_comp", "r_conv_s", "r_conv_r",
        "w_idle", "w_frag_end", "w_send_nx", "w_recv_claim", "w_recv_wire",
        "w_recv_conv",
        "u", "u_dir", "u_two_hops", "u_n_frags", "u_conv", "u_hold",
        "u_nx", "u_nh", "u_work", "u_comp_target", "u_comm_target",
        "u_msgs",
    )

    def __init__(self, kind: int, n: int) -> None:
        self.kind = kind
        self.is_probe = False
        self.u = False
        self.present = np.zeros(n, dtype=bool)
        self.streams: list[str | None] = [None] * n
        self.tag_id = np.zeros(n, dtype=np.int32)
        self.interval = np.zeros(n)
        self.work = np.zeros(n)
        self.comp_target = np.zeros(n)
        self.comm_target = np.zeros(n)
        self.per_message = np.zeros(n)
        self.dir_code = np.zeros(n, dtype=np.int8)
        self.two_hops = np.zeros(n, dtype=bool)
        self.n_frags = np.zeros(n, dtype=np.int64)
        self.conv = np.zeros(n)
        self.hold = np.zeros(n)
        self.nx = np.zeros(n)
        self.nh = np.zeros(n)
        self.count = np.zeros(n, dtype=np.int64)
        self.cycles = np.zeros(n, dtype=np.int64)
        self.msgs_per_cycle = np.zeros(n, dtype=np.int64)
        self.r_comp = self.r_conv_s = self.r_conv_r = -1
        self.w_idle = self.w_frag_end = self.w_send_nx = -1
        self.w_recv_claim = self.w_recv_wire = self.w_recv_conv = -1

    def fill(self, lane: int, p: _PActor, tag_id: int) -> None:
        self.present[lane] = True
        self.streams[lane] = p.stream
        self.tag_id[lane] = tag_id
        self.interval[lane] = p.interval
        self.work[lane] = p.work
        self.comp_target[lane] = p.comp_target
        self.comm_target[lane] = p.comm_target
        self.per_message[lane] = p.per_message
        self.dir_code[lane] = p.dir_code
        self.two_hops[lane] = p.two_hops
        self.n_frags[lane] = p.n_frags
        self.conv[lane] = p.conv
        self.hold[lane] = p.hold
        self.nx[lane] = p.nx
        self.nh[lane] = p.nh
        self.count[lane] = p.count
        self.cycles[lane] = p.cycles
        self.msgs_per_cycle[lane] = p.msgs_per_cycle

    def maybe_freeze(self) -> None:
        """Freeze lane-uniform actors down to Python scalars.

        Replication batches are uniform by construction, but sweep
        batches also qualify actor-by-actor: a fig5-style sweep varies
        only the probe's message size, so its contender slots still
        collapse. Absent-anywhere or mixed-parameter actors stay on the
        per-lane array path.
        """
        if not self.present.all():
            return
        for f in (
            self.dir_code, self.two_hops, self.n_frags, self.conv,
            self.hold, self.nx, self.nh, self.work, self.comp_target,
            self.comm_target, self.msgs_per_cycle,
        ):
            if (f != f[0]).any():
                return
        self.freeze_uniform()

    def freeze_uniform(self) -> None:
        """Mark an actor as lane-uniform.

        Each per-lane constant collapses to one Python scalar and the
        hot handlers take branch-free fast paths (same arithmetic on
        the same doubles — scalar broadcast is bitwise identical to
        indexing a constant array). Only valid when every lane is
        present with identical parameters.
        """
        self.u = True
        self.u_dir = int(self.dir_code[0])
        self.u_two_hops = bool(self.two_hops[0])
        self.u_n_frags = int(self.n_frags[0])
        self.u_conv = float(self.conv[0])
        self.u_hold = float(self.hold[0])
        self.u_nx = float(self.nx[0])
        self.u_nh = float(self.nh[0])
        self.u_work = float(self.work[0])
        self.u_comp_target = float(self.comp_target[0])
        self.u_comm_target = float(self.comm_target[0])
        self.u_msgs = int(self.msgs_per_cycle[0])


def _compile_batch(points: Sequence[SweepPoint]) -> tuple[list[_Actor], np.ndarray, np.ndarray, np.ndarray, str]:
    """Align per-lane points into actor slots; returns per-lane platform arrays.

    Slots are [daemon?] + [contender 0..C) + [probe] where C is the
    maximum contender count over the batch; lanes whose point lacks a
    slot's actor leave it absent. Returns ``(actors, cap, quantum,
    context_switch, discipline)``.
    """
    n = len(points)
    plans: dict[SweepPoint, _PointPlan] = {}
    for pt in points:
        if pt not in plans:
            reason = unsupported_reason(pt.spec, pt.contenders, pt.probe)
            if reason is not None:
                raise WorkloadError(f"vector backend cannot run this scenario: {reason}")
            plans[pt] = _PointPlan(pt)
    per_lane = [plans[pt] for pt in points]
    disciplines = {pl.discipline for pl in per_lane}
    if len(disciplines) > 1:
        raise WorkloadError(f"sweep mixes cpu disciplines {sorted(disciplines)}; batch per discipline")
    kinds = {pl.probe.kind for pl in per_lane}
    if len(kinds) > 1:
        raise WorkloadError("sweep mixes probe kinds; batch per probe type")
    has_daemon = any(pl.daemon is not None for pl in per_lane)
    n_cons = max((len(pl.cons) for pl in per_lane), default=0)
    actors: list[_Actor] = []
    if has_daemon:
        actors.append(_Actor(_K_DAEMON, n))
    for _ in range(n_cons):
        actors.append(_Actor(_K_ALT, n))
    probe_actor = _Actor(per_lane[0].probe.kind, n)
    probe_actor.is_probe = True
    actors.append(probe_actor)

    cap = np.empty(n)
    quantum = np.empty(n)
    cswitch = np.empty(n)
    for lane, pl in enumerate(per_lane):
        cap[lane] = pl.cap
        quantum[lane] = pl.q
        cswitch[lane] = pl.cs
        # Per-lane tag ids: equal tag strings share a session identity;
        # None tags get a private per-slot identity (can never match).
        tag_ids: dict[object, int] = {}

        def tid(tag: str | None, slot: int) -> int:
            key: object = tag if tag is not None else ("\x00anon", slot)
            return tag_ids.setdefault(key, len(tag_ids))

        slot = 0
        if has_daemon:
            if pl.daemon is not None:
                actors[0].fill(lane, pl.daemon, tid(pl.daemon.tag, 0))
            slot = 1
        for k, con in enumerate(pl.cons):
            actors[slot + k].fill(lane, con, tid(con.tag, slot + k))
        probe_actor.fill(lane, pl.probe, tid(pl.probe.tag, len(actors) - 1))
    if n > 0:
        for actor in actors:
            actor.maybe_freeze()
    return actors, cap, quantum, cswitch, per_lane[0].discipline


# ---------------------------------------------------------------------------
# CPU engines
# ---------------------------------------------------------------------------


class _PSCpu:
    """Fluid processor sharing over lanes: virtual-time epochs.

    Instead of charging every running job at every settle, each lane
    carries a virtual service clock ``V`` (``dV = rate · dt``) and each
    job a completion target ``finish_v = V(submit) + work``; jobs can
    only complete at a lane's epoch horizon, where ``finish_v - V <=
    eps`` is checked once.
    """

    def __init__(
        self, rows: int, n: int, cap: np.ndarray, pending: list, uniform: bool = False
    ) -> None:
        self.cap = cap
        self.u = uniform
        self.u_cap = float(cap[0]) if uniform else 0.0
        self.fv = np.full((rows, n), np.inf)  # finish_v targets
        self.vtime = np.zeros(n)  # cumulative per-job virtual service
        self.eps_t0 = np.zeros(n)
        self.eps_rate = np.zeros(n)
        self.t_cpu = np.full(n, np.inf)
        self.dirty = np.zeros(n, dtype=bool)
        self.pending = pending

    def advance(self, fidx: np.ndarray, t_next: np.ndarray) -> None:
        """Advance every live lane's virtual clock to its next instant."""
        self.vtime[fidx] += (t_next[fidx] - self.eps_t0[fidx]) * self.eps_rate[fidx]
        self.eps_t0[fidx] = t_next[fidx]

    def settle(self, hidx: np.ndarray, t_next: np.ndarray) -> None:
        """Settle lanes whose sharing horizon fires: find finished jobs.

        Completions can only happen at a lane's epoch horizon (between
        horizons every running job's remaining service is strictly
        positive), so this is the one place ``finish_v - V <= eps`` is
        checked. Finished jobs land in ``pending`` and step their state
        machines after this instant's wake events, like the object
        scheduler's succeed-then-resume ordering.
        """
        done = self.fv[:, hidx] - self.vtime[hidx] <= _EPS
        for r in done.any(axis=1).nonzero()[0]:
            comp = hidx[done[r]]
            self.fv[r][comp] = np.inf
            self.dirty[comp] = True
            self.pending[r].append(comp)

    def submit(self, row: int, idx: np.ndarray, t: np.ndarray, work: np.ndarray) -> np.ndarray | None:
        """Submit CPU work; returns the instantly-done mask (None = none).

        Mirrors :meth:`TimeSharedCPU.execute`: work ``<= eps`` succeeds
        immediately without touching the scheduler; real work joins the
        sharing set with a completion target ``V(now) + work``.
        """
        instant = work <= _EPS
        if instant.all():
            return instant
        bsel = ~instant
        bidx = idx[bsel]
        self.fv[row][bidx] = self.vtime[bidx] + work[bsel]
        self.dirty[bidx] = True
        return instant if instant.any() else None

    def submit_work(self, row: int, idx: np.ndarray, t: np.ndarray, work: float) -> None:
        """Uniform-batch :meth:`submit`: one scalar work amount > eps.

        Callers have already ruled out the instant case, so the mask
        machinery is skipped entirely; the arithmetic is the same
        (scalar broadcast is bitwise identical to the constant array).
        """
        self.fv[row][idx] = self.vtime[idx] + work
        self.dirty[idx] = True

    def recompute(self, t_all: np.ndarray) -> None:
        """Start a fresh sharing epoch at the current instant for dirty lanes."""
        didx = self.dirty.nonzero()[0]
        if didx.size == 0:
            return
        self.dirty[didx] = False
        cols = self.fv[:, didx]
        n = np.isfinite(cols).sum(axis=0)
        running = n > 0
        if running.all():
            run = didx
        else:
            idle = didx[~running]
            self.t_cpu[idle] = np.inf
            self.eps_rate[idle] = 0.0
            run = didx[running]
            if run.size == 0:
                return
            n = n[running]
        rate = (self.u_cap if self.u else self.cap[run]) / n
        min_fv = cols.min(axis=0) if running.all() else cols[:, running].min(axis=0)
        self.eps_rate[run] = rate
        self.t_cpu[run] = t_all[run] + (min_fv - self.vtime[run]) / rate


class _RRCpu:
    """Round-robin epochs over lanes: the `_RRPlan` closed forms as arrays.

    The port keeps the object scheduler's observable semantics exactly
    (see ``_scheduler_rr_ff`` in :mod:`repro.sim.cpu`): a head slice
    (session-continuation credit, a fresh quantum, or an interrupted
    slice's remainder), a rotation ``queue + [head]`` whose
    context-switch pattern repeats every cycle, affine slice starts,
    charge-on-end settlement, and a session tag/credit pair that only
    changes at completions. Queue order lives in per-row sequence
    numbers (``qseq``: smallest = queue head, ``_SENT`` = not queued)
    so a "deque" rebuild is a scatter of fresh ranks; ``sseq`` keeps
    submission order for the continuation scan's tie-break among
    equal-tag jobs. All arithmetic mirrors the object engine's
    operation order so the two agree to float round-off.
    """

    def __init__(
        self,
        rows: int,
        n: int,
        cap: np.ndarray,
        quantum: np.ndarray,
        cswitch: np.ndarray,
        row_tag: np.ndarray,
        pending: list,
        uniform: bool = False,
    ) -> None:
        self.R = rows
        self.n = n
        self.cap = cap
        self.q = quantum
        self.cs = cswitch
        self.wq = quantum * cap  # one slice's work, as the oracle computes it
        self.u = uniform
        if uniform:
            self.u_cap = float(cap[0])
            self.u_q = float(quantum[0])
            self.u_cs = float(cswitch[0])
            self.u_wq = float(self.wq[0])
        self.row_tag = row_tag  # (rows, n) per-lane tag id of each row's actor
        self.rem = np.full((rows, n), np.inf)  # remaining work; inf = absent
        self.qseq = np.full((rows, n), _SENT)
        self.sseq = np.full((rows, n), _SENT)
        self.next_seq = np.zeros(n, dtype=np.int64)
        self.sess = np.full(n, -1, dtype=np.int64)  # last completer's tag id
        self.credit = np.zeros(n)
        # Resume stub: the interrupted segment that seeds the next plan.
        self.rs_row = np.full(n, -1, dtype=np.int64)
        self.rs_pre = np.zeros(n)
        self.rs_run = np.zeros(n)
        self.rs_charge = np.zeros(n)
        self.rs_credit = np.zeros(n)
        # Active plan (p_head < 0 = no plan).
        self.p_head = np.full(n, -1, dtype=np.int64)
        self.p_pre_end = np.zeros(n)
        self.p_head_end = np.zeros(n)
        self.p_run = np.zeros(n)
        self.p_charge = np.zeros(n)
        self.p_credit = np.zeros(n)
        self.p_len = np.zeros(n, dtype=np.int64)  # rotation length (0 = head completes)
        self.p_ord = np.full((rows, n), -1, dtype=np.int64)
        self.p_start1 = np.zeros((rows, n))
        self.p_start2 = np.zeros((rows, n))
        self.p_cycle = np.zeros(n)
        self.p_comp_row = np.full(n, -1, dtype=np.int64)
        self.p_comp_pos = np.full(n, -1, dtype=np.int64)
        self.p_comp_n = np.zeros(n, dtype=np.int64)
        self.p_comp_work = np.zeros(n)
        self.t_cpu = np.full(n, np.inf)
        self.dirty = np.zeros(n, dtype=bool)
        self.pending = pending
        # Staged arrival settlements: a blocked arrival into an active
        # plan marks the lane here and the settlement itself runs once
        # per instant (at the top of ``recompute``), amortized across
        # every row that submitted this iteration. Sequence numbers for
        # the eventual queue rebuild are reserved at staging time so
        # arrivals still sort after the rebuilt rotation.
        self.staged = np.zeros(n, dtype=bool)
        self.staged_e = np.zeros(n)
        self.staged_base = np.zeros(n, dtype=np.int64)

    def advance(self, fidx: np.ndarray, t_next: np.ndarray) -> None:
        """RR keeps no per-instant clock state; epochs settle lazily."""

    # -- submission ----------------------------------------------------------

    def submit(self, row: int, idx: np.ndarray, t: np.ndarray, work: np.ndarray) -> np.ndarray | None:
        """Submit CPU work; returns the instantly-done mask (None = none).

        A blocked arrival into a lane with an active plan interrupts
        that plan at the arrival instant (the object scheduler's
        wake-interrupts-epoch path), then joins the queue tail. The
        interruption is staged: the settlement walk runs batched at the
        end of the instant, with ``p_len - 1`` sequence numbers reserved
        now so the rebuilt rotation sorts ahead of this arrival.
        """
        instant = work <= _EPS
        if instant.all():
            return instant
        bsel = ~instant
        bidx = idx[bsel]
        act = (self.p_head[bidx] >= 0) & ~self.staged[bidx]
        if act.any():
            si = bidx[act]
            base = self.next_seq[si]
            self.staged[si] = True
            self.staged_e[si] = t[bsel][act]
            self.staged_base[si] = base
            self.next_seq[si] = base + np.maximum(self.p_len[si] - 1, 0)
        seq = self.next_seq[bidx]
        self.rem[row, bidx] = work[bsel]
        self.qseq[row, bidx] = seq
        self.sseq[row, bidx] = seq
        self.next_seq[bidx] = seq + 1
        self.dirty[bidx] = True
        return instant if instant.any() else None

    def submit_work(self, row: int, idx: np.ndarray, t: np.ndarray, work: float) -> None:
        """Uniform-batch :meth:`submit`: one scalar work amount > eps.

        Callers have already ruled out the instant case, so the
        per-lane instant mask and its subset indexing are skipped; the
        staging and queue bookkeeping are identical.
        """
        act = (self.p_head[idx] >= 0) & ~self.staged[idx]
        if act.any():
            si = idx[act]
            base = self.next_seq[si]
            self.staged[si] = True
            self.staged_e[si] = t[act]
            self.staged_base[si] = base
            self.next_seq[si] = base + np.maximum(self.p_len[si] - 1, 0)
        seq = self.next_seq[idx]
        self.rem[row, idx] = work
        self.qseq[row, idx] = seq
        self.sseq[row, idx] = seq
        self.next_seq[idx] = seq + 1
        self.dirty[idx] = True

    # -- settlement ----------------------------------------------------------

    def _settle_arrival(self, lanes: np.ndarray, e: np.ndarray, base: np.ndarray) -> None:
        """Interrupt active plans at instant *e* (strictly before horizon).

        Mirrors ``_rr_settle`` + ``_rr_finalize_stub``: find the
        in-progress segment, charge every segment that *ended* by *e*,
        convert the interrupted segment into a resume stub, and rebuild
        the queue to the oracle's rotation order. *base* carries the
        sequence numbers reserved at staging time for the rebuild.
        """
        head = self.p_head[lanes]
        pre_end = self.p_pre_end[lanes]
        head_end = self.p_head_end[lanes]
        in_pre = e < pre_end
        in_head = ~in_pre & (e < head_end)
        simple = in_pre | in_head
        if simple.any():
            si = lanes[simple]
            self.rs_row[si] = head[simple]
            self.rs_pre[si] = np.where(in_pre, pre_end - e, 0.0)[simple]
            cap = self.u_cap if self.u else self.cap[lanes]
            self.rs_run[si] = np.where(in_pre, self.p_run[lanes], (head_end - e) * cap)[simple]
            self.rs_charge[si] = self.p_charge[si]
            self.rs_credit[si] = self.p_credit[si]
            # Queue order unchanged (the rotation never started).
        wsel = ~simple
        if wsel.any():
            self._walk_settle(lanes[wsel], e[wsel], base[wsel])
        self.p_head[lanes] = -1
        self.t_cpu[lanes] = np.inf
        self.dirty[lanes] = True

    def _walk_settle(self, lanes: np.ndarray, e: np.ndarray, base: np.ndarray) -> None:
        """The rotation walk of ``_rr_walk`` at instant *e*, in closed form.

        The plan's affine slice starts (``p_start1``/``p_start2``) are
        the walk's own cursor values, so the interrupted segment is
        located by comparing *e* against them directly instead of
        re-walking: position ``k`` is the first whose switch-or-slice
        span contains *e* — first in pass one (bitwise the oracle's
        comparisons), else after skipping whole steady cycles (affine
        shifts of the steady pattern, equal to the oracle's cursor to
        float round-off). Charge-on-end then collapses to one count per
        rotation position: a slice per completed pass plus one more
        before the stub.
        """
        m = lanes.size
        ar = np.arange(m)
        if self.u:
            q, cap, wq = self.u_q, self.u_cap, self.u_wq
        else:
            q, cap, wq = self.q[lanes], self.cap[lanes], self.wq[lanes]
        L = self.p_len[lanes]
        ordm = self.p_ord[:, lanes]
        head = self.p_head[lanes]
        max_l = int(L.max())
        pos_col = np.arange(max_l)[:, None]
        live = pos_col < L
        s1 = self.p_start1[:max_l, lanes]
        # Pass one: the first position whose segment spans ``e``.
        hit1m = live & (e < s1 + q)
        hit1 = hit1m.any(axis=0)
        k = hit1m.argmax(axis=0)
        sstart = s1[k, ar]
        fp = np.zeros(m)  # completed full passes before the stub pass
        rest = ~hit1
        if rest.any():
            # ``e`` is past pass one's end: skip whole steady cycles
            # with the oracle's integer division + overshoot guard,
            # then locate the stub in the repeating pattern.
            s2 = self.p_start2[:max_l, lanes]
            ce1 = s1[L - 1, ar] + q  # the walk's cursor after pass one
            r = self.p_cycle[lanes]
            mcyc = np.where(rest, ((e - ce1) / r).astype(np.int64), 0)
            over = (mcyc > 0) & (ce1 + mcyc * r > e)
            while over.any():  # float-division overshoot guard
                mcyc[over] -= 1
                over = (mcyc > 0) & (ce1 + mcyc * r > e)
            off = mcyc * r
            found = hit1.copy()
            guard = 0
            while not found.all():
                guard += 1
                if guard > 4:  # pragma: no cover - defensive
                    raise WorkloadError("rr vector settlement failed to locate the epoch cursor")
                hm = live & (e < s2 + off + q) & ~found
                got = hm.any(axis=0)
                if got.any():
                    k2 = hm.argmax(axis=0)
                    k = np.where(got, k2, k)
                    sstart = np.where(got, s2[k2, ar] + off, sstart)
                    found |= got
                more = ~found
                mcyc = np.where(more, mcyc + 1, mcyc)
                off = np.where(more, off + r, off)
            fp = np.where(rest, (1 + mcyc).astype(float), 0.0)
        # Charge-on-end as one count per rotation position, applied in
        # a single delta per job like ``_rr_apply``.
        delta = np.zeros((self.R, m))
        delta[head, ar] += self.p_charge[lanes]
        cnt = fp + (pos_col < k)
        sel = live & (cnt > 0.0)
        lane_mat = np.broadcast_to(ar, (max_l, m))
        delta[ordm[:max_l][sel], lane_mat[sel]] += (cnt * wq)[sel]
        self.rem[:, lanes] -= delta
        # Finalize the stub (``_rr_finalize_stub``): the interrupted
        # segment's job becomes the next plan's head.
        is_sw = e < sstart
        srow = ordm[k, ar]
        remj = self.rem[srow, lanes]
        allot = np.minimum(wq, remj)
        credit_after = q - allot / cap
        run = np.where(is_sw, allot, np.maximum(allot - (e - sstart) * cap, 0.0))
        self.rs_row[lanes] = srow
        self.rs_pre[lanes] = np.where(is_sw, sstart - e, 0.0)
        self.rs_run[lanes] = run
        self.rs_charge[lanes] = allot
        self.rs_credit[lanes] = credit_after
        self._requeue_rotation(lanes, L, ordm, k, srow, base)

    def _requeue_rotation(
        self,
        lanes: np.ndarray,
        L: np.ndarray,
        ordm: np.ndarray,
        k: np.ndarray,
        excl_row: np.ndarray,
        base: np.ndarray,
    ) -> None:
        """Rebuild queue order to ``cl[k+1:] + cl[:k]`` (position *k* plucked).

        Fresh ascending sequence numbers from *base* reproduce the
        oracle's rebuilt deque; jobs submitted later at this same
        instant draw larger numbers and land at the tail, exactly like
        ``_rr_rebuild``'s extras. One scatter covers every position:
        rotation rows are distinct within a lane, so targets are unique.
        """
        max_l = int(L.max())
        pos_col = np.arange(max_l)[:, None]
        sel = (pos_col < L) & (pos_col != k)
        rank = (pos_col - k - 1) % np.maximum(L, 1)
        lane_mat = np.broadcast_to(lanes, (max_l, lanes.size))
        self.qseq[ordm[:max_l][sel], lane_mat[sel]] = (base + rank)[sel]
        self.qseq[excl_row, lanes] = _SENT

    def settle(self, hidx: np.ndarray, t_next: np.ndarray) -> None:
        """Settle lanes whose epoch horizon fires: the planned completion.

        Mirrors ``_rr_settle_completion``: integer cycle arithmetic
        (never the float walk) decides how many slices each rotation
        job completed, the completer's final partial slice closes the
        epoch, and the session tag/credit update to the completer's.
        """
        lanes = hidx
        m = lanes.size
        ar = np.arange(m)
        if self.u:
            q, cap, wq = self.u_q, self.u_cap, self.u_wq
        else:
            q, cap, wq = self.q[lanes], self.cap[lanes], self.wq[lanes]
        head = self.p_head[lanes]
        n_ = self.p_comp_n[lanes]
        k = self.p_comp_pos[lanes]
        crow = self.p_comp_row[lanes]
        comp_work = self.p_comp_work[lanes]
        rot = n_ >= 1
        delta = np.zeros((self.R, m))
        delta[head, ar] += self.p_charge[lanes]
        if rot.any():
            L = self.p_len[lanes]
            ordm = self.p_ord[:, lanes]
            max_l = int(L[rot].max())
            pos_col = np.arange(max_l)[:, None]
            sel = rot & (pos_col < L)
            rows_flat = ordm[:max_l][sel]
            lanes_flat = np.broadcast_to(ar, (max_l, m))[sel]
            # n == 1 charges only positions before k; n >= 2 charges
            # (n-1) whole slices everywhere plus one more before k.
            # Two separate adds mirror the oracle's accumulation order:
            # (current + add_base) + extra. Rotation rows are distinct
            # within a lane, so the flat scatter-adds are exact.
            add_base = np.where(n_ == 1, 0.0, (n_ - 1).astype(float) * wq)
            delta[rows_flat, lanes_flat] += np.broadcast_to(add_base, (max_l, m))[sel]
            delta[rows_flat, lanes_flat] += np.where(pos_col < k, wq, 0.0)[sel]
            delta[crow[rot], ar[rot]] += comp_work[rot]
        self.rem[:, lanes] -= delta
        self.rem[crow, lanes] = np.inf
        self.qseq[crow, lanes] = _SENT
        self.sseq[crow, lanes] = _SENT
        self.sess[lanes] = self.row_tag[crow, lanes]
        self.credit[lanes] = np.where(rot, q - comp_work / cap, self.p_credit[lanes])
        if rot.any():
            ri = lanes[rot]
            base = self.next_seq[ri]
            self.next_seq[ri] = base + (self.p_len[ri] - 1)
            self._requeue_rotation(ri, self.p_len[ri], self.p_ord[:, ri], k[rot], crow[rot], base)
        self.p_head[lanes] = -1
        self.t_cpu[lanes] = np.inf
        self.dirty[lanes] = True
        for r in np.unique(crow):
            self.pending[r].append(lanes[crow == r])

    # -- dispatch ------------------------------------------------------------

    def recompute(self, t_all: np.ndarray) -> None:
        """Dispatch dirty lanes: resume stubs, continuations, fresh picks.

        Mirrors the scheduler loop's pick order: a pending resume stub
        seeds the next plan directly; otherwise a queued job continuing
        the session (same tag, credit left) is plucked, else the queue
        head starts a fresh quantum (paying a context switch when the
        session tag changes); an empty job table resets the session.
        Staged arrival interruptions flush first so their resume stubs
        are visible to this dispatch pass.
        """
        if self.staged.any():
            si = self.staged.nonzero()[0]
            self.staged[si] = False
            self._settle_arrival(si, self.staged_e[si], self.staged_base[si])
        didx = self.dirty.nonzero()[0]
        if didx.size == 0:
            return
        self.dirty[didx] = False
        d = didx
        m = d.size
        head = np.full(m, -1, dtype=np.int64)
        pre = np.zeros(m)
        run = np.zeros(m)
        charge = np.zeros(m)
        credit_after = np.zeros(m)
        build = np.zeros(m, dtype=bool)
        rsel = self.rs_row[d] >= 0
        if rsel.any():
            ri = d[rsel]
            head[rsel] = self.rs_row[ri]
            pre[rsel] = self.rs_pre[ri]
            run[rsel] = self.rs_run[ri]
            charge[rsel] = self.rs_charge[ri]
            credit_after[rsel] = self.rs_credit[ri]
            build |= rsel
            self.rs_row[ri] = -1
        fsel = ~rsel
        if fsel.any():
            lanes = d[fsel]
            qs = self.qseq[:, lanes]
            queued = qs < _SENT
            has = queued.any(axis=0)
            if not has.all():
                idle = lanes[~has]
                # The scheduler resumed with an empty job table: the
                # session resets (``session_tag = None; credit = 0``).
                self.sess[idle] = -1
                self.credit[idle] = 0.0
                self.t_cpu[idle] = np.inf
            if has.any():
                pick = lanes[has]
                p = pick.size
                arp = np.arange(p)
                qs = qs[:, has]
                queued = queued[:, has]
                sess = self.sess[pick]
                cont_ok = (sess >= 0) & (self.credit[pick] > _EPS)
                tags = self.row_tag[:, pick]
                cand = queued & (tags == sess) & cont_ok
                ss = np.where(cand, self.sseq[:, pick], _SENT)
                cpos = ss.argmin(axis=0)
                has_cont = ss[cpos, arp] < _SENT
                # qs already carries _SENT at non-queued positions.
                qpos = qs.argmin(axis=0)
                hrow = np.where(has_cont, cpos, qpos)
                htag = self.row_tag[hrow, pick]
                if self.u:
                    cs_p, q_p, cap_p = self.u_cs, self.u_q, self.u_cap
                else:
                    cs_p, q_p, cap_p = self.cs[pick], self.q[pick], self.cap[pick]
                do_switch = ~has_cont & (sess >= 0) & (htag != sess) & (cs_p > 0.0)
                pre_p = np.where(do_switch, cs_p, 0.0)
                budget = np.where(has_cont, self.credit[pick], q_p)
                remh = self.rem[hrow, pick]
                run_p = np.minimum(budget * cap_p, remh)
                self.qseq[hrow, pick] = _SENT
                sel = fsel.copy()
                sel[fsel] = has
                head[sel] = hrow
                pre[sel] = pre_p
                run[sel] = run_p
                charge[sel] = run_p
                credit_after[sel] = budget - run_p / cap_p
                build |= sel
        if build.any():
            bl = d[build]
            self._build_plans(
                bl, t_all[bl], head[build], pre[build], run[build],
                charge[build], credit_after[build],
            )

    def _build_plans(
        self,
        lanes: np.ndarray,
        t: np.ndarray,
        head: np.ndarray,
        pre: np.ndarray,
        run: np.ndarray,
        charge: np.ndarray,
        credit_after: np.ndarray,
    ) -> None:
        """The `_rr_build_plan` closed forms, per lane.

        First-pass slice starts (the head's tag seeds the switch
        pattern), one steady cycle whose pattern repeats, the period
        ``r = L·q + Σsw``, and the earliest completion candidate via
        :func:`repro.sim.cpu.rr_completion_slices` arithmetic — all as
        position-loops over the (short) rotation with every operation
        in the oracle's order.
        """
        m = lanes.size
        ar = np.arange(m)
        if self.u:
            cap, q, cs, wq = self.u_cap, self.u_q, self.u_cs, self.u_wq
        else:
            cap, q, cs, wq = self.cap[lanes], self.q[lanes], self.cs[lanes], self.wq[lanes]
        pre_end = t + pre
        head_end = pre_end + run / cap
        self.p_head[lanes] = head
        self.p_pre_end[lanes] = pre_end
        self.p_head_end[lanes] = head_end
        self.p_run[lanes] = run
        self.p_charge[lanes] = charge
        self.p_credit[lanes] = credit_after
        remh = self.rem[head, lanes]
        completes = remh - charge <= _EPS
        rotm = ~completes
        qs = self.qseq[:, lanes]
        queued = qs < _SENT
        nq = queued.sum(axis=0)
        ordm = np.argsort(qs, axis=0, kind="stable")  # intp == int64 here
        if rotm.any():
            ordm[nq[rotm], ar[rotm]] = head[rotm]  # head closes the rotation
        L = np.where(rotm, nq + 1, 0)
        self.p_len[lanes] = L
        self.p_ord[:, lanes] = ordm
        horizon = np.where(completes, head_end, np.inf)
        comp_row = np.where(completes, head, -1)
        comp_pos = np.full(m, -1, dtype=np.int64)
        comp_n = np.zeros(m, dtype=np.int64)
        comp_work = np.where(completes, charge, 0.0)
        if rotm.any():
            max_l = int(L.max())
            head_tag = self.row_tag[head, lanes]
            rows_mat = ordm[:max_l]
            live = np.arange(max_l)[:, None] < L  # prefix mask (L = 0 for completes)
            tg = self.row_tag[rows_mat, lanes]
            # Switch pattern: both the first pass and the steady cycle
            # are seeded by the head's tag (the head closes the
            # rotation), so one shifted-tag comparison yields both.
            prev = np.empty_like(tg)
            prev[0] = head_tag
            prev[1:] = tg[:-1]
            sw = np.where(live & (tg != prev) & (cs > 0.0), cs, 0.0)
            # Affine slice starts: the cursor chain accumulates in the
            # oracle's order (cursor + sw, then + q per live slice).
            start1 = np.empty_like(sw)
            start2 = np.empty_like(sw)
            cursor = head_end.copy()
            for pos in range(max_l):
                s1 = cursor + sw[pos]
                start1[pos] = s1
                cursor = np.where(live[pos], s1 + q, cursor)
            for pos in range(max_l):
                s2 = cursor + sw[pos]
                start2[pos] = s2
                cursor = np.where(live[pos], s2 + q, cursor)
            self.p_start1[:max_l, lanes] = start1
            self.p_start2[:max_l, lanes] = start2
            r = L * q + sw.sum(axis=0)  # == len(cl) * q + sum(sws)
            self.p_cycle[lanes] = r
            # Earliest completion candidate (strict-< key order on
            # (finish, start, position), positions ascending) — matrix
            # form: min finish, then min start among ties, then the
            # first position, with rr_completion_slices element-wise.
            remj = self.rem[rows_mat, lanes]
            remj = np.where(rows_mat == head, remj - charge, remj)
            valid = live & (remj > _EPS)
            remj = np.where(valid, remj, wq)  # keep dead positions finite
            nsl = np.ceil((remj - _EPS) / wq)
            nsl = np.where(nsl < 1.0, 1.0, nsl)
            work_f = remj - (nsl - 1.0) * wq
            work_f = np.where(work_f > wq, wq, work_f)
            s = np.where(nsl == 1.0, start1, start2 + (nsl - 2.0) * r)
            fin = np.where(valid, s + work_f / cap, np.inf)
            best_fin = fin.min(axis=0)
            s_tied = np.where(fin == best_fin, s, np.inf)
            pick = (fin == best_fin) & (s_tied == s_tied.min(axis=0))
            kpos = pick.argmax(axis=0)
            comp_row = np.where(rotm, rows_mat[kpos, ar], comp_row)
            comp_pos = np.where(rotm, kpos, comp_pos)
            comp_n = np.where(rotm, nsl[kpos, ar].astype(np.int64), comp_n)
            comp_work = np.where(rotm, work_f[kpos, ar], comp_work)
            horizon = np.where(completes, horizon, best_fin)
        self.p_comp_row[lanes] = comp_row
        self.p_comp_pos[lanes] = comp_pos
        self.p_comp_n[lanes] = comp_n
        self.p_comp_work[lanes] = comp_work
        delay = horizon - t
        delay = np.where(delay < 0.0, 0.0, delay)  # float guard, like the oracle
        self.t_cpu[lanes] = t + delay


# ---------------------------------------------------------------------------
# The lane engine
# ---------------------------------------------------------------------------


class _Lanes:
    """The struct-of-arrays engine state for one batch of lanes.

    All index arrays (``idx``) passed between methods are sorted lane
    ids, each paired with an equally shaped ``t`` array of that lane's
    current instant; every mutation is an elementwise or per-lane
    operation, so lanes never interact (the bit-for-bit independence
    property the hypothesis suite asserts).
    """

    def __init__(
        self,
        actors: list[_Actor],
        cap: np.ndarray,
        quantum: np.ndarray,
        cswitch: np.ndarray,
        discipline: str,
        lane_seeds: Sequence[int],
    ) -> None:
        n = len(lane_seeds)
        a_count = len(actors)
        self.actors = actors
        self.n = n
        # Row registries: processing order is spawn order (within one
        # actor the rows are lane-disjoint, so their relative order is
        # immaterial). Each entry is (actor index, bound handler).
        self.cpu_rows: list[tuple[int, object]] = []
        self.wait_rows: list[tuple[int, object]] = []

        def cpu_row(a: int, fn) -> int:
            self.cpu_rows.append((a, fn))
            return len(self.cpu_rows) - 1

        def wait_row(a: int, fn) -> int:
            self.wait_rows.append((a, fn))
            return len(self.wait_rows) - 1

        for a, actor in enumerate(actors):
            if actor.kind == _K_DAEMON:
                actor.r_comp = cpu_row(a, self._daemon_sleep)
                actor.w_idle = wait_row(a, self._daemon_wake)
                continue
            if actor.kind == _K_COMPUTE:
                actor.r_comp = cpu_row(a, self._compute_comp_done)
                continue
            pr = actor.present
            if actor.kind == _K_ALT:
                actor.r_comp = cpu_row(a, self._alt_comp_done)
                has_msgs = bool((actor.comm_target[pr] > 0).any())
            elif actor.kind == _K_CYCLIC:
                actor.r_comp = cpu_row(a, self._cyclic_after_comp)
                has_msgs = bool((actor.msgs_per_cycle[pr] > 0).any())
            else:  # burst
                has_msgs = True
            if has_msgs:
                sends = pr & (actor.dir_code != 1) & (actor.n_frags > 0)
                recvs = pr & (actor.dir_code != 0) & (actor.n_frags > 0)
                if sends.any():
                    actor.r_conv_s = cpu_row(a, self._send_wire)
                    actor.w_frag_end = wait_row(a, self._fragment_done)
                    if actor.two_hops[sends].any():
                        actor.w_send_nx = wait_row(a, self._send_nx)
                if recvs.any():
                    actor.r_conv_r = cpu_row(a, self._fragment_done)
                    actor.w_recv_conv = wait_row(a, self._recv_conv)
                    if actor.two_hops[recvs].any():
                        actor.w_recv_wire = wait_row(a, self._recv_wire)
                    if (actor.nh[recvs] > 0).any():
                        actor.w_recv_claim = wait_row(a, self._recv_claim)

        # Lane matrices: inf = nothing scheduled in that row.
        self.wait = np.full((len(self.wait_rows), n), np.inf)
        # Per-actor counters (row-free state machines).
        self.msgs_left = np.zeros((a_count, n), dtype=np.int64)
        self.frags_left = np.zeros((a_count, n), dtype=np.int64)
        self.flip = np.ones((a_count, n), dtype=bool)  # True = next message out
        self.cur_out = np.zeros((a_count, n), dtype=bool)
        self.cycles_left = np.zeros((a_count, n), dtype=np.int64)
        # Per-lane resources.
        self.link_free = np.zeros(n)
        self.svc_free = np.zeros(n)
        self.active = np.ones(n, dtype=bool)
        self.inactive = np.zeros(n, dtype=bool)
        self.result = np.full(n, np.nan)
        # CPU completions discovered at a lane's epoch horizon, awaiting
        # their row's state-machine step at the current instant.
        self.pending: list[list[np.ndarray]] = [[] for _ in self.cpu_rows]
        # The CPU scalar fast path needs only a shared platform, not a
        # uniform workload — sweeps over probe parameters still qualify.
        uniform = n > 0 and not (
            (cap != cap[0]).any()
            or (quantum != quantum[0]).any()
            or (cswitch != cswitch[0]).any()
        )
        for a, actor in enumerate(actors):
            if actor.u and actor.u_dir != 2 and actor.u_n_frags > 1:
                # Fixed-direction uniform actors never flip, so the
                # per-message ``cur_out`` write is hoisted to here.
                self.cur_out[a][:] = actor.u_dir == 0
        if discipline == "rr":
            row_tag = np.zeros((len(self.cpu_rows), n), dtype=np.int64)
            for r, (a, _fn) in enumerate(self.cpu_rows):
                row_tag[r] = actors[a].tag_id
            self.cpu = _RRCpu(
                len(self.cpu_rows), n, cap, quantum, cswitch, row_tag, self.pending,
                uniform=uniform,
            )
        else:
            self.cpu = _PSCpu(len(self.cpu_rows), n, cap, self.pending, uniform=uniform)
        # One generator per (lane, drawing actor): identical construction
        # to the object path's ``platform.rng(...)`` named streams.
        self.gens: list[list[np.random.Generator | None] | None] = []
        for actor in actors:
            if all(s is None for s in actor.streams):
                self.gens.append(None)
            else:
                self.gens.append(
                    [
                        None if s is None else RandomStreams(int(seed)).get(s)
                        for s, seed in zip(actor.streams, lane_seeds)
                    ]
                )

    # -- RNG -----------------------------------------------------------------

    def _draw(self, a: int, idx: np.ndarray, scale: np.ndarray) -> np.ndarray:
        """Per-lane exponential draws at per-lane scale (lane-owned streams)."""
        gens = self.gens[a]
        out = np.empty(idx.size)
        for j, i in enumerate(idx):
            out[j] = float(gens[i].exponential(scale[i]))
        return out

    # -- message pipeline ----------------------------------------------------
    #
    # Send (object engine): conv CPU -> wire -> [2hops nx] -> [nh].
    # Receive: [nh] -> [2hops nx] -> wire -> conv CPU. Each resource is
    # claimed at the same instant the object engine claims it; the
    # *completions* of claimed resources and the pure node-handling
    # timeouts are priced forward into a single wake.

    def _start_message(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Pick the message direction and enter its first fragment."""
        actor = self.actors[a]
        if actor.u:
            if actor.u_dir == 2:
                nxt = self.flip[a]
                out = nxt[idx]
                nxt[idx] = ~out
                if actor.u_n_frags > 1:
                    self.frags_left[a][idx] = actor.u_n_frags
                    self.cur_out[a][idx] = out
                self._dispatch_fragment(a, idx, t, out)
            else:
                if actor.u_n_frags > 1:
                    self.frags_left[a][idx] = actor.u_n_frags
                if actor.u_dir == 0:
                    self._send_fragment(a, idx, t)
                else:
                    self._recv_fragment(a, idx, t)
            return
        dirc = actor.dir_code[idx]
        both = dirc == 2
        out = dirc == 0
        if both.any():
            nxt = self.flip[a]
            cur = nxt[idx]
            out = np.where(both, cur, out)
            bi = idx[both]
            nxt[bi] = ~cur[both]
        self.frags_left[a][idx] = actor.n_frags[idx]
        self.cur_out[a][idx] = out
        self._dispatch_fragment(a, idx, t, out)

    def _start_fragment(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Enter the next fragment of an in-flight multi-fragment message."""
        self._dispatch_fragment(a, idx, t, self.cur_out[a][idx])

    def _dispatch_fragment(self, a: int, idx: np.ndarray, t: np.ndarray, out: np.ndarray) -> None:
        n_out = np.count_nonzero(out)
        if n_out == out.size:
            self._send_fragment(a, idx, t)
        elif n_out == 0:
            self._recv_fragment(a, idx, t)
        else:
            self._send_fragment(a, idx[out], t[out])
            self._recv_fragment(a, idx[~out], t[~out])

    def _send_fragment(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.u:
            if actor.u_conv <= _EPS:
                self._send_wire(a, idx, t)
            else:
                self.cpu.submit_work(actor.r_conv_s, idx, t, actor.u_conv)
            return
        instant = self.cpu.submit(actor.r_conv_s, idx, t, actor.conv[idx])
        if instant is not None:
            # Zero-cost conversion: straight onto the wire.
            sub = idx[instant]
            if sub.size == idx.size:
                self._send_wire(a, idx, t)
            elif sub.size:
                self._send_wire(a, sub, t[instant])

    def _send_wire(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Conversion done: claim the wire now, price the rest forward."""
        actor = self.actors[a]
        if actor.u:
            c1 = np.maximum(t, self.link_free[idx]) + actor.u_hold
            self.link_free[idx] = c1
            if actor.u_two_hops:
                self.wait[actor.w_send_nx][idx] = c1
            else:
                self.wait[actor.w_frag_end][idx] = c1 + actor.u_nh
            return
        c1 = np.maximum(t, self.link_free[idx]) + actor.hold[idx]
        self.link_free[idx] = c1
        th = actor.two_hops[idx]
        if th.all():
            # The service node is claimed at wire completion; wake then.
            self.wait[actor.w_send_nx][idx] = c1
        elif th.any():
            self.wait[actor.w_send_nx][idx[th]] = c1[th]
            one = idx[~th]
            self.wait[actor.w_frag_end][one] = c1[~th] + actor.nh[one]
        else:
            self.wait[actor.w_frag_end][idx] = c1 + actor.nh[idx]

    def _send_nx(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Wire completion (2hops send): claim the service node now."""
        actor = self.actors[a]
        if actor.u:
            c2 = np.maximum(t, self.svc_free[idx]) + actor.u_nx
            self.svc_free[idx] = c2
            self.wait[actor.w_frag_end][idx] = c2 + actor.u_nh
            return
        c2 = np.maximum(t, self.svc_free[idx]) + actor.nx[idx]
        self.svc_free[idx] = c2
        self.wait[actor.w_frag_end][idx] = c2 + actor.nh[idx]

    def _recv_fragment(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.u:
            if actor.u_nh > 0:
                self.wait[actor.w_recv_claim][idx] = t + actor.u_nh
            else:
                self._recv_claim(a, idx, t)
            return
        hn = actor.nh[idx] > 0
        if hn.all():
            self.wait[actor.w_recv_claim][idx] = t + actor.nh[idx]
        elif hn.any():
            hi = idx[hn]
            self.wait[actor.w_recv_claim][hi] = t[hn] + actor.nh[hi]
            self._recv_claim(a, idx[~hn], t[~hn])
        else:
            self._recv_claim(a, idx, t)

    def _recv_claim(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Node handling over: claim nx (2hops) or the wire directly."""
        actor = self.actors[a]
        if actor.u:
            if actor.u_two_hops:
                c2 = np.maximum(t, self.svc_free[idx]) + actor.u_nx
                self.svc_free[idx] = c2
                self.wait[actor.w_recv_wire][idx] = c2
            else:
                self._recv_wire(a, idx, t)
            return
        th = actor.two_hops[idx]
        if th.any():
            hi = idx[th]
            c2 = np.maximum(t[th], self.svc_free[hi]) + actor.nx[hi]
            self.svc_free[hi] = c2
            self.wait[actor.w_recv_wire][hi] = c2
        if not th.all():
            oi = idx[~th]
            self._recv_wire(a, oi, t[~th])

    def _recv_wire(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        hold = actor.u_hold if actor.u else actor.hold[idx]
        cw = np.maximum(t, self.link_free[idx]) + hold
        self.link_free[idx] = cw
        self.wait[actor.w_recv_conv][idx] = cw

    def _recv_conv(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.u:
            if actor.u_conv <= _EPS:
                self._fragment_done(a, idx, t)
            else:
                self.cpu.submit_work(actor.r_conv_r, idx, t, actor.u_conv)
            return
        instant = self.cpu.submit(actor.r_conv_r, idx, t, actor.conv[idx])
        if instant is not None:
            sub = idx[instant]
            if sub.size == idx.size:
                self._fragment_done(a, idx, t)
            elif sub.size:
                self._fragment_done(a, sub, t[instant])

    def _fragment_done(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.u and actor.u_n_frags <= 1:
            # Single-fragment messages skip the countdown entirely.
            self._message_done(a, idx, t)
            return
        left = self.frags_left[a][idx] - 1
        self.frags_left[a][idx] = left
        more = left > 0
        n_more = np.count_nonzero(more)
        if n_more == more.size:
            self._start_fragment(a, idx, t)
        elif n_more:
            self._start_fragment(a, idx[more], t[more])
            self._message_done(a, idx[~more], t[~more])
        else:
            self._message_done(a, idx, t)

    def _message_done(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        left = self.msgs_left[a][idx] - 1
        self.msgs_left[a][idx] = left
        more = left > 0
        n_more = np.count_nonzero(more)
        if n_more == more.size:
            self._start_message(a, idx, t)
            return
        if n_more:
            self._start_message(a, idx[more], t[more])
            idx, t = idx[~more], t[~more]
        if actor.kind == _K_BURST:
            self._finish_lane(idx, t)
        elif actor.kind == _K_ALT:
            self._alt_cycle(a, idx, t)
        else:  # cyclic probe: end of this cycle's messages
            self._cyclic_next(a, idx, t)

    # -- per-kind cycle logic -------------------------------------------------

    def _alt_cycle(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Start ``alternating`` cycles (draw order: comp work, then budget)."""
        actor = self.actors[a]
        if actor.u:
            pending, tp = idx, t
            while pending.size:
                if actor.u_comp_target > 0:
                    works = self._draw(a, pending, actor.comp_target)
                    instant = self.cpu.submit(actor.r_comp, pending, tp, works)
                    if instant is None:
                        break
                    pending, tp = pending[instant], tp[instant]
                    if pending.size == 0:
                        break
                if actor.u_comm_target > 0:
                    self._alt_comm(a, pending, tp)
                    break
                if actor.u_comp_target <= 0:  # pragma: no cover - defensive
                    break
                # Pure-compute contender whose work draw was ~zero: loop
                # straight into the next cycle's draw.
            return
        pending, tp = idx, t
        while pending.size:
            hc = actor.comp_target[pending] > 0
            at_comm = np.ones(pending.size, dtype=bool)
            if hc.any():
                ci = pending[hc]
                instant = self.cpu.submit(
                    actor.r_comp, ci, tp[hc], self._draw(a, ci, actor.comp_target)
                )
                # Blocked lanes leave the loop; instant draws fall
                # through to the comm stage at this same instant.
                at_comm[hc] = np.zeros(ci.size, dtype=bool) if instant is None else instant
            cur, curt = pending[at_comm], tp[at_comm]
            if cur.size == 0:
                break
            hm = actor.comm_target[cur] > 0
            if hm.any():
                self._alt_comm(a, cur[hm], curt[hm])
            # Pure-compute lanes whose work draw was ~zero loop straight
            # into the next cycle's draw, like the object engine.
            again = ~hm & (actor.comp_target[cur] > 0)
            pending, tp = cur[again], curt[again]

    def _alt_comp_done(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """A contender's compute chunk finished: communicate or loop."""
        actor = self.actors[a]
        if actor.u:
            if actor.u_comm_target > 0:
                self._alt_comm(a, idx, t)
            else:
                self._alt_cycle(a, idx, t)
            return
        hm = actor.comm_target[idx] > 0
        if hm.all():
            self._alt_comm(a, idx, t)
        elif hm.any():
            self._alt_comm(a, idx[hm], t[hm])
            self._alt_cycle(a, idx[~hm], t[~hm])
        else:
            self._alt_cycle(a, idx, t)

    def _alt_comm(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        gens = self.gens[a]
        per_message = actor.per_message
        comm_target = actor.comm_target
        msgs = np.empty(idx.size, dtype=np.int64)
        for j, i in enumerate(idx):
            budget = gens[i].exponential(comm_target[i])
            msgs[j] = max(1, int(round(budget / per_message[i])))
        self.msgs_left[a][idx] = msgs
        self._start_message(a, idx, t)

    def _daemon_sleep(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Draw the daemon's next idle interval and sleep."""
        actor = self.actors[a]
        self.wait[actor.w_idle][idx] = t + self._draw(a, idx, actor.interval)

    def _daemon_wake(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        instant = self.cpu.submit(actor.r_comp, idx, t, self._draw(a, idx, actor.work))
        if instant is not None and instant.any():
            # Zero-length burst: straight to the next interval draw.
            self._daemon_sleep(a, idx[instant], t[instant])

    def _compute_comp_done(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        self._finish_lane(idx, t)

    def _cyclic_next(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Advance the cyclic probe to its next cycle (or finish)."""
        actor = self.actors[a]
        if actor.u:
            pending, tp = idx, t
            while pending.size:
                self.cycles_left[a][pending] -= 1
                fin = self.cycles_left[a][pending] <= 0
                if fin.any():
                    self._finish_lane(pending[fin], tp[fin])
                    pending, tp = pending[~fin], tp[~fin]
                    if pending.size == 0:
                        break
                if actor.u_work > _EPS:
                    self.cpu.submit_work(actor.r_comp, pending, tp, actor.u_work)
                    break
                if actor.u_msgs > 0:
                    self.msgs_left[a][pending] = actor.u_msgs
                    self._start_message(a, pending, tp)
                    break
                # Message-free cycle whose comp was instant: fall through
                # to the next cycle at this instant (bounded by ``cycles``).
            return
        pending, tp = idx, t
        while pending.size:
            self.cycles_left[a][pending] -= 1
            fin = self.cycles_left[a][pending] <= 0
            if fin.any():
                self._finish_lane(pending[fin], tp[fin])
                pending, tp = pending[~fin], tp[~fin]
                if pending.size == 0:
                    break
            at_msgs = np.ones(pending.size, dtype=bool)
            hw = actor.work[pending] > 0
            if hw.any():
                wi = pending[hw]
                instant = self.cpu.submit(actor.r_comp, wi, tp[hw], actor.work[wi])
                at_msgs[hw] = np.zeros(wi.size, dtype=bool) if instant is None else instant
            cur, curt = pending[at_msgs], tp[at_msgs]
            if cur.size == 0:
                break
            hm = actor.msgs_per_cycle[cur] > 0
            if hm.any():
                mi = cur[hm]
                self.msgs_left[a][mi] = actor.msgs_per_cycle[mi]
                self._start_message(a, mi, curt[hm])
            # Message-free cycles whose comp was instant fall through to
            # the next cycle at the same instant (bounded by ``cycles``).
            pending, tp = cur[~hm], curt[~hm]

    def _cyclic_after_comp(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.u:
            if actor.u_msgs > 0:
                self.msgs_left[a][idx] = actor.u_msgs
                self._start_message(a, idx, t)
            else:
                self._cyclic_next(a, idx, t)
            return
        hm = actor.msgs_per_cycle[idx] > 0
        if hm.any():
            mi = idx[hm]
            self.msgs_left[a][mi] = actor.msgs_per_cycle[mi]
            self._start_message(a, mi, t[hm])
        if not hm.all():
            self._cyclic_next(a, idx[~hm], t[~hm])

    def _finish_lane(self, idx: np.ndarray, t: np.ndarray) -> None:
        self.result[idx] = t
        self.active[idx] = False
        self.inactive[idx] = True

    # -- driver ----------------------------------------------------------------

    def init(self) -> None:
        """Run every present actor's first step at t = 0 (spawn order)."""
        t0 = np.zeros(self.n)
        for a, actor in enumerate(self.actors):
            lanes = actor.present.nonzero()[0]
            if lanes.size == 0:
                continue
            t = t0[lanes]
            if actor.kind == _K_DAEMON:
                self._daemon_sleep(a, lanes, t)
            elif actor.kind == _K_ALT:
                self._alt_cycle(a, lanes, t)
            elif actor.kind == _K_BURST:
                self.msgs_left[a][lanes] = actor.count[lanes]
                self._start_message(a, lanes, t)
            elif actor.kind == _K_COMPUTE:
                instant = self.cpu.submit(actor.r_comp, lanes, t, actor.work[lanes])
                if instant is not None and instant.any():
                    self._finish_lane(lanes[instant], t[instant])
            else:
                self.cycles_left[a][lanes] = actor.cycles[lanes] + 1
                self._cyclic_next(a, lanes, t)
        self.cpu.recompute(t0)

    def run(self, max_iters: int = 50_000_000) -> np.ndarray:
        self.init()
        wait = self.wait
        cpu = self.cpu
        t_cpu = cpu.t_cpu
        active = self.active
        pending = self.pending
        wait_rows = self.wait_rows
        cpu_rows = self.cpu_rows
        iters = 0
        while True:
            iters += 1
            if iters > max_iters:
                active.fill(False)
                self.inactive.fill(True)
                break
            if wait.shape[0]:
                t_next = wait.min(axis=0)
                np.minimum(t_next, t_cpu, out=t_next)
            else:  # wait-free scenario (e.g. a bare compute probe)
                t_next = t_cpu.copy()
            t_next[self.inactive] = np.nan
            finite = np.isfinite(t_next)
            if not finite.any():
                # Every lane is finished (or, defensively, stalled with
                # no scheduled event — those keep their NaN result).
                active.fill(False)
                self.inactive.fill(True)
                break
            t_next[~finite] = np.nan
            # Every lane with an event sits exactly at its own ``t_next``:
            # advance per-instant CPU state (the PS virtual clocks) in
            # one sweep, amortized across every state change this
            # iteration performs at that instant.
            fidx = finite.nonzero()[0]
            cpu.advance(fidx, t_next)
            # Settle lanes whose CPU horizon fires at their next instant
            # first — at a tie the object scheduler also settles the
            # epoch before the arriving wake is processed.
            hidx = (t_cpu == t_next).nonzero()[0]
            if hidx.size:
                cpu.settle(hidx, t_next)
            # Wake events, then the horizon's CPU completions, in spawn
            # order. The due matrix is computed before any handler runs:
            # handlers only ever reschedule their own actor's rows, and
            # never to the current instant (all zero-length waits are
            # collapsed inline), so the snapshot stays exact. Inactive
            # lanes carry a NaN ``t_next`` and can never be due; the rare
            # same-instant tie with a lane the probe just finished is
            # processed harmlessly — the lane's result is already
            # recorded and its next ``t_next`` is NaN.
            dm = wait == t_next
            for r in dm.any(axis=1).nonzero()[0]:
                due = dm[r].nonzero()[0]
                wait[r][due] = np.inf
                a, fn = wait_rows[r]
                fn(a, due, t_next[due])
            for r, bucket in enumerate(pending):
                if bucket:
                    pending[r] = []
                    idx = bucket[0] if len(bucket) == 1 else np.unique(np.concatenate(bucket))
                    a, fn = cpu_rows[r]
                    fn(a, idx, t_next[idx])
            cpu.recompute(t_next)
        return self.result


def run_sweep(
    points: Sequence[SweepPoint],
    lane_seeds: Sequence[int],
    max_iters: int = 50_000_000,
) -> np.ndarray:
    """Run one scenario *per lane*; per-lane probe elapsed times.

    *points* names each lane's scenario (repeat one point for a
    replication batch; vary them for a sweep batch) and *lane_seeds*
    the per-lane master seeds (the object path's
    ``RandomStreams(seed).fork(k).seed``). All points must share the
    probe type and CPU discipline (group upstream otherwise); ragged
    contender counts and daemon-less points are padded with absent
    actors. Lanes that fail to finish (event-cap breach or a stall)
    come back as NaN for the caller to quarantine — a bad lane degrades
    the batch, it does not poison it.
    """
    if len(points) != len(lane_seeds):
        raise WorkloadError(
            f"run_sweep needs one point per lane, got {len(points)} points for {len(lane_seeds)} lanes"
        )
    if len(lane_seeds) == 0:
        return np.empty(0)
    actors, cap, quantum, cswitch, discipline = _compile_batch(points)
    lanes = _Lanes(actors, cap, quantum, cswitch, discipline, lane_seeds)
    return lanes.run(max_iters=max_iters)


def run_lanes(
    spec: "SunParagonSpec",
    contenders: Sequence[VectorContender],
    probe: _Probe,
    lane_seeds: Sequence[int],
    max_iters: int = 50_000_000,
) -> np.ndarray:
    """Run one scenario across many lanes; per-lane probe elapsed times.

    The single-point wrapper over :func:`run_sweep`: every lane gets
    the same :class:`SweepPoint`, differing only in its seed universe.
    """
    point = SweepPoint(spec=spec, contenders=tuple(contenders), probe=probe)
    return run_sweep([point] * len(lane_seeds), lane_seeds, max_iters=max_iters)
