"""Struct-of-arrays Monte-Carlo backend: many replications in lockstep.

The event-horizon kernel (see :mod:`repro.sim.cpu`) made one run
O(#arrivals); this module makes *many runs at once* cheap. N independent
replications of a Sun/Paragon contention scenario are laid out as
arrays of per-lane clocks, fluid-sharing epoch states and link-horizon
completions, and all lanes advance together: each iteration takes every
live lane to its own next event instant and applies the state
transitions with a handful of NumPy ops, instead of dispatching Python
simulation objects per run.

Three structural tricks keep the per-event cost at array-op scale:

* **Collapsed pipelines.** A message fragment's non-resource waits
  (node handling, the completion of an already-claimed wire or service
  slot) are priced the moment they become determined, so a fragment
  costs two or three events instead of five. Resources are still
  *claimed* at exactly the instants the object engine claims them —
  the wire at conversion completion, the service node at wire
  completion — so FIFO horizons are identical.
* **Virtual-time fluid sharing.** Instead of charging every running
  job at every settle, each lane carries a virtual service clock ``V``
  (``dV = rate · dt``) and each job a completion target
  ``finish_v = V(submit) + work``; jobs can only complete at a lane's
  epoch horizon, where ``finish_v - V <= eps`` is checked once.
* **A row per (actor, event class).** Waits and CPU jobs live in
  ``(rows, lanes)`` matrices whose row *identity* names the handler —
  "contender 1's send conversion finished", "the probe's node handling
  elapsed" — so finding this iteration's work is one matrix compare
  and there is no per-event phase bookkeeping at all. ``inf`` encodes
  "nothing scheduled" in both matrices.

Scope
-----
The vector engine covers the scenario family the replication sweeps
actually run: a :class:`~repro.platforms.specs.SunParagonSpec` platform
with the fluid ``discipline="ps"`` front-end CPU, the OS daemon,
``alternating`` contenders, and a ``message_burst`` /
``frontend_program`` / ``cyclic_program`` probe, in both ``1hop`` and
``2hops`` modes. Anything else (round-robin quanta, CM2, fault
injection, priorities) is the object engine's job —
:func:`repro.experiments.simulate.simulate` falls back automatically.

Correctness is anchored the same way PR 5 anchored event horizons: the
per-lane arithmetic mirrors the object engine operation for operation
(same ``max(now, free_at) + hold`` wire horizons, same named RNG
streams and draw order), and the 240-seed differential suite in
``tests/sim/test_vector.py`` holds the two engines to 1e-9 agreement.
Because no computation ever crosses lanes, a batch over lanes ``[0..N)``
is bit-for-bit the concatenation of N single-lane batches — which is
what lets ``repro.parallel`` workers split *batches of lanes*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import WorkloadError
from .rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..platforms.specs import SunParagonSpec

__all__ = [
    "VectorContender",
    "VectorBurstProbe",
    "VectorComputeProbe",
    "VectorCyclicProbe",
    "unsupported_reason",
    "run_lanes",
]

#: Same completion tolerance as the object CPU (:data:`repro.sim.cpu._EPSILON`).
_EPS = 1e-12

# Actor kinds.
_K_DAEMON, _K_ALT, _K_BURST, _K_COMPUTE, _K_CYCLIC = range(5)


@dataclass(frozen=True)
class VectorContender:
    """One :func:`repro.apps.contender.alternating` application."""

    comm_fraction: float
    message_size: float
    stream: str
    mean_cycle: float = 0.25
    direction: str = "both"
    mode: str = "1hop"


@dataclass(frozen=True)
class VectorBurstProbe:
    """The :func:`repro.apps.burst.message_burst` probe."""

    size_words: float
    count: int
    direction: str = "out"
    mode: str = "1hop"


@dataclass(frozen=True)
class VectorComputeProbe:
    """The :func:`repro.apps.program.frontend_program` probe."""

    work: float


@dataclass(frozen=True)
class VectorCyclicProbe:
    """The :func:`repro.apps.program.cyclic_program` probe."""

    cycles: int
    comp_per_cycle: float
    messages_per_cycle: int
    message_size: float
    mode: str = "1hop"


_Probe = VectorBurstProbe | VectorComputeProbe | VectorCyclicProbe


def unsupported_reason(
    spec: "SunParagonSpec",
    contenders: Sequence[VectorContender],
    probe: _Probe,
) -> str | None:
    """Why the vector engine cannot run this scenario (None = it can).

    The checks mirror the coverage statement in the module docstring;
    callers use the reason string for the counted fallback to the
    object backend.
    """
    if type(spec).__name__ != "SunParagonSpec":
        return f"platform spec {type(spec).__name__} (only SunParagonSpec is vectorized)"
    if spec.cpu.discipline != "ps":
        return f"cpu discipline {spec.cpu.discipline!r} (only 'ps' is vectorized)"
    if not isinstance(probe, (VectorBurstProbe, VectorComputeProbe, VectorCyclicProbe)):
        return f"probe {type(probe).__name__} has no vectorized form"
    modes = {c.mode for c in contenders}
    modes.add(getattr(probe, "mode", "1hop"))
    if "2hops" in modes and spec.service_node_capacity != 1:
        return f"service_node_capacity={spec.service_node_capacity} (2hops needs capacity 1)"
    return None


def _message_params(spec: "SunParagonSpec", size: float, mode: str) -> tuple[int, float, float, float]:
    """Per-fragment constants of one message: (n_frags, conv, hold, nx)."""
    frags = spec.wire.fragment_sizes(size)
    frag = frags[0]
    conv = spec.conversion_cpu_time(frag)
    hold = float(spec.wire.occupancy(frag))
    nx = spec.nx_time(frag) if mode == "2hops" else 0.0
    return len(frags), conv, hold, nx


class _Actor:
    """Compiled per-actor constants (shared by every lane).

    The ``r_*`` / ``w_*`` fields are this actor's row indices into the
    lane matrices: ``r_*`` rows hold CPU completion targets, ``w_*``
    rows hold wake instants (-1 = the actor never uses that event
    class).
    """

    __slots__ = (
        "kind", "stream", "interval", "work", "comp_target", "comm_target",
        "per_message", "dir_code", "two_hops", "n_frags", "conv", "hold",
        "nx", "nh", "count", "cycles", "msgs_per_cycle", "is_probe",
        "r_comp", "r_conv_s", "r_conv_r",
        "w_idle", "w_frag_end", "w_send_nx", "w_recv_claim", "w_recv_wire",
        "w_recv_conv",
    )

    def __init__(self) -> None:
        self.kind = _K_DAEMON
        self.stream: str | None = None
        self.interval = self.work = 0.0
        self.comp_target = self.comm_target = self.per_message = 0.0
        self.dir_code = 0  # 0 = out, 1 = in, 2 = both
        self.two_hops = False
        self.n_frags = 0
        self.conv = self.hold = self.nx = self.nh = 0.0
        self.count = self.cycles = self.msgs_per_cycle = 0
        self.is_probe = False
        self.r_comp = self.r_conv_s = self.r_conv_r = -1
        self.w_idle = self.w_frag_end = self.w_send_nx = -1
        self.w_recv_claim = self.w_recv_wire = self.w_recv_conv = -1


_DIR_CODES = {"out": 0, "in": 1, "both": 2}


def _compile_actors(
    spec: "SunParagonSpec",
    contenders: Sequence[VectorContender],
    probe: _Probe,
) -> list[_Actor]:
    actors: list[_Actor] = []
    nh = spec.node_handling
    if spec.cpu.daemon_interval > 0 and spec.cpu.daemon_work > 0:
        a = _Actor()
        a.kind = _K_DAEMON
        a.interval = spec.cpu.daemon_interval
        a.work = spec.cpu.daemon_work
        a.stream = "sunparagon/os-daemon"
        actors.append(a)
    for c in contenders:
        if not 0.0 <= c.comm_fraction <= 1.0:
            raise WorkloadError(f"comm_fraction must be in [0, 1], got {c.comm_fraction!r}")
        if c.mean_cycle <= 0:
            raise WorkloadError(f"mean_cycle must be > 0, got {c.mean_cycle!r}")
        if c.direction not in _DIR_CODES:
            raise WorkloadError(f"direction must be 'out', 'in' or 'both', got {c.direction!r}")
        if c.comm_fraction > 0 and c.message_size <= 0:
            raise WorkloadError("a communicating contender needs a positive message size")
        a = _Actor()
        a.kind = _K_ALT
        a.stream = c.stream
        a.comp_target = (1.0 - c.comm_fraction) * c.mean_cycle
        a.comm_target = c.comm_fraction * c.mean_cycle
        a.dir_code = _DIR_CODES[c.direction]
        a.two_hops = c.mode == "2hops"
        a.nh = nh
        if c.comm_fraction > 0:
            a.per_message = spec.message_dedicated_time(c.message_size, c.mode)
            a.n_frags, a.conv, a.hold, a.nx = _message_params(spec, c.message_size, c.mode)
        actors.append(a)
    p = _Actor()
    p.is_probe = True
    if isinstance(probe, VectorBurstProbe):
        if probe.count < 1:
            raise WorkloadError(f"burst needs >= 1 message, got {probe.count!r}")
        if probe.direction not in ("out", "in"):
            raise WorkloadError(f"direction must be 'out' or 'in', got {probe.direction!r}")
        p.kind = _K_BURST
        p.count = probe.count
        p.dir_code = _DIR_CODES[probe.direction]
        p.two_hops = probe.mode == "2hops"
        p.nh = nh
        p.n_frags, p.conv, p.hold, p.nx = _message_params(spec, probe.size_words, probe.mode)
    elif isinstance(probe, VectorComputeProbe):
        if probe.work < 0:
            raise WorkloadError(f"work must be >= 0, got {probe.work!r}")
        p.kind = _K_COMPUTE
        p.work = probe.work
    else:
        if probe.cycles < 1:
            raise WorkloadError(f"need >= 1 cycle, got {probe.cycles!r}")
        if probe.comp_per_cycle < 0 or probe.messages_per_cycle < 0:
            raise WorkloadError("cycle parameters must be >= 0")
        p.kind = _K_CYCLIC
        p.cycles = probe.cycles
        p.work = probe.comp_per_cycle
        p.msgs_per_cycle = probe.messages_per_cycle
        p.dir_code = 2  # cyclic_program alternates out/in
        p.two_hops = probe.mode == "2hops"
        p.nh = nh
        if probe.messages_per_cycle > 0:
            p.n_frags, p.conv, p.hold, p.nx = _message_params(
                spec, probe.message_size, probe.mode
            )
    actors.append(p)
    return actors


class _Lanes:
    """The struct-of-arrays engine state for one batch of replications.

    All index arrays (``idx``) passed between methods are sorted lane
    ids, each paired with an equally shaped ``t`` array of that lane's
    current instant; every mutation is an elementwise or per-lane
    operation, so lanes never interact (the bit-for-bit independence
    property the hypothesis suite asserts).
    """

    def __init__(
        self,
        spec: "SunParagonSpec",
        actors: list[_Actor],
        lane_seeds: Sequence[int],
    ) -> None:
        n = len(lane_seeds)
        a_count = len(actors)
        self.actors = actors
        self.n = n
        self.capacity = spec.cpu.capacity
        # Row registries: processing order is spawn order (within one
        # actor the rows are lane-disjoint, so their relative order is
        # immaterial). Each entry is (actor index, bound handler).
        self.cpu_rows: list[tuple[int, object]] = []
        self.wait_rows: list[tuple[int, object]] = []

        def cpu_row(a: int, fn) -> int:
            self.cpu_rows.append((a, fn))
            return len(self.cpu_rows) - 1

        def wait_row(a: int, fn) -> int:
            self.wait_rows.append((a, fn))
            return len(self.wait_rows) - 1

        for a, actor in enumerate(actors):
            if actor.kind == _K_DAEMON:
                actor.r_comp = cpu_row(a, self._daemon_sleep)
                actor.w_idle = wait_row(a, self._daemon_wake)
                continue
            if actor.kind == _K_COMPUTE:
                actor.r_comp = cpu_row(a, self._compute_comp_done)
                continue
            if actor.kind == _K_ALT:
                comp_done = self._alt_comm if actor.comm_target > 0 else self._alt_cycle
                actor.r_comp = cpu_row(a, comp_done)
                has_msgs = actor.comm_target > 0
            elif actor.kind == _K_CYCLIC:
                actor.r_comp = cpu_row(a, self._cyclic_after_comp)
                has_msgs = actor.msgs_per_cycle > 0
            else:  # burst
                has_msgs = True
            if has_msgs:
                if actor.dir_code in (0, 2):  # sends
                    actor.r_conv_s = cpu_row(a, self._send_wire)
                    actor.w_frag_end = wait_row(a, self._fragment_done)
                    if actor.two_hops:
                        actor.w_send_nx = wait_row(a, self._send_nx)
                if actor.dir_code in (1, 2):  # receives
                    actor.r_conv_r = cpu_row(a, self._fragment_done)
                    actor.w_recv_conv = wait_row(a, self._recv_conv)
                    if actor.two_hops:
                        actor.w_recv_wire = wait_row(a, self._recv_wire)
                    if actor.nh > 0:
                        actor.w_recv_claim = wait_row(a, self._recv_claim)

        # Lane matrices: inf = nothing scheduled in that row.
        self.wait = np.full((len(self.wait_rows), n), np.inf)
        self.fv = np.full((len(self.cpu_rows), n), np.inf)  # finish_v targets
        # Per-actor counters (row-free state machines).
        self.msgs_left = np.zeros((a_count, n), dtype=np.int64)
        self.frags_left = np.zeros((a_count, n), dtype=np.int64)
        self.flip = np.ones((a_count, n), dtype=bool)  # True = next message out
        self.cur_out = np.zeros((a_count, n), dtype=bool)
        self.cycles_left = np.zeros((a_count, n), dtype=np.int64)
        # Per-lane resources and fluid-sharing epoch.
        self.link_free = np.zeros(n)
        self.svc_free = np.zeros(n)
        self.vtime = np.zeros(n)  # cumulative per-job virtual service
        self.eps_t0 = np.zeros(n)
        self.eps_rate = np.zeros(n)
        self.t_cpu = np.full(n, np.inf)
        self.dirty = np.zeros(n, dtype=bool)
        self.active = np.ones(n, dtype=bool)
        self.inactive = np.zeros(n, dtype=bool)
        self.result = np.full(n, np.nan)
        # CPU completions discovered at a lane's epoch horizon, awaiting
        # their row's state-machine step at the current instant.
        self.pending: list[list[np.ndarray]] = [[] for _ in self.cpu_rows]
        # One generator per (lane, drawing actor): identical construction
        # to the object path's ``platform.rng(...)`` named streams.
        self.gens: list[list[np.random.Generator] | None] = []
        for actor in actors:
            if actor.stream is None:
                self.gens.append(None)
            else:
                self.gens.append(
                    [RandomStreams(int(s)).get(actor.stream) for s in lane_seeds]
                )

    # -- RNG -----------------------------------------------------------------

    def _draw(self, a: int, idx: np.ndarray, scale: float) -> np.ndarray:
        gens = self.gens[a]
        out = np.empty(idx.size)
        for j, i in enumerate(idx):
            out[j] = float(gens[i].exponential(scale))
        return out

    # -- fluid-sharing CPU ----------------------------------------------------
    #
    # Lanes' virtual service clocks are advanced once per iteration in
    # :meth:`run` (every lane with an event sits exactly at its own
    # ``t_next``, so one array op replaces a touch per state change);
    # the methods below therefore read ``vtime`` as already current.

    def _complete_at_horizon(self, hidx: np.ndarray) -> None:
        """Settle lanes whose sharing horizon fires: find finished jobs.

        Completions can only happen at a lane's epoch horizon (between
        horizons every running job's remaining service is strictly
        positive), so this is the one place ``finish_v - V <= eps`` is
        checked. Finished jobs land in ``pending`` and step their state
        machines after this instant's wake events, like the object
        scheduler's succeed-then-resume ordering.
        """
        done = self.fv[:, hidx] - self.vtime[hidx] <= _EPS
        for r in done.any(axis=1).nonzero()[0]:
            comp = hidx[done[r]]
            self.fv[r][comp] = np.inf
            self.dirty[comp] = True
            self.pending[r].append(comp)

    def _submit_scalar(self, row: int, idx: np.ndarray, work: float) -> bool:
        """Submit constant CPU work; True if it blocked (False = instant).

        Mirrors :meth:`TimeSharedCPU.execute`: work ``<= eps`` succeeds
        immediately without touching the scheduler; real work joins the
        sharing set with a completion target ``V(now) + work``.
        """
        if work <= _EPS:
            return False
        self.fv[row][idx] = self.vtime[idx] + work
        self.dirty[idx] = True
        return True

    def _submit_array(self, row: int, idx: np.ndarray, work: np.ndarray) -> np.ndarray | None:
        """Submit drawn CPU work; the instantly-done mask (None = none)."""
        blocked = work > _EPS
        if blocked.all():
            self.fv[row][idx] = self.vtime[idx] + work
            self.dirty[idx] = True
            return None
        bidx = idx[blocked]
        if bidx.size:
            self.fv[row][bidx] = self.vtime[bidx] + work[blocked]
            self.dirty[bidx] = True
        return ~blocked

    def _recompute(self, t_all: np.ndarray) -> None:
        """Start a fresh sharing epoch at the current instant for dirty lanes."""
        didx = self.dirty.nonzero()[0]
        if didx.size == 0:
            return
        self.dirty[didx] = False
        if not self.cpu_rows:
            return
        cols = self.fv[:, didx]
        n = np.isfinite(cols).sum(axis=0)
        running = n > 0
        if running.all():
            run = didx
        else:
            idle = didx[~running]
            self.t_cpu[idle] = np.inf
            self.eps_rate[idle] = 0.0
            run = didx[running]
            if run.size == 0:
                return
            n = n[running]
        rate = self.capacity / n
        min_fv = cols.min(axis=0) if running.all() else cols[:, running].min(axis=0)
        self.eps_rate[run] = rate
        self.t_cpu[run] = t_all[run] + (min_fv - self.vtime[run]) / rate

    # -- message pipeline ----------------------------------------------------
    #
    # Send (object engine): conv CPU -> wire -> [2hops nx] -> [nh].
    # Receive: [nh] -> [2hops nx] -> wire -> conv CPU. Each resource is
    # claimed at the same instant the object engine claims it; the
    # *completions* of claimed resources and the pure node-handling
    # timeouts are priced forward into a single wake.

    def _start_message(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Pick the message direction and enter its first fragment."""
        actor = self.actors[a]
        if actor.dir_code != 2:
            if actor.n_frags > 1:
                self.frags_left[a][idx] = actor.n_frags
            if actor.dir_code == 0:
                self._send_fragment(a, idx, t)
            else:
                self._recv_fragment(a, idx, t)
            return
        nxt = self.flip[a]
        out = nxt[idx]
        nxt[idx] = ~out
        if actor.n_frags > 1:
            self.frags_left[a][idx] = actor.n_frags
            self.cur_out[a][idx] = out
        n_out = np.count_nonzero(out)
        if n_out == out.size:
            self._send_fragment(a, idx, t)
        elif n_out == 0:
            self._recv_fragment(a, idx, t)
        else:
            self._send_fragment(a, idx[out], t[out])
            self._recv_fragment(a, idx[~out], t[~out])

    def _start_fragment(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Enter the next fragment of an in-flight multi-fragment message."""
        actor = self.actors[a]
        if actor.dir_code == 0:
            self._send_fragment(a, idx, t)
        elif actor.dir_code == 1:
            self._recv_fragment(a, idx, t)
        else:
            out = self.cur_out[a][idx]
            n_out = np.count_nonzero(out)
            if n_out == out.size:
                self._send_fragment(a, idx, t)
            elif n_out == 0:
                self._recv_fragment(a, idx, t)
            else:
                self._send_fragment(a, idx[out], t[out])
                self._recv_fragment(a, idx[~out], t[~out])

    def _send_fragment(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        if not self._submit_scalar(self.actors[a].r_conv_s, idx, self.actors[a].conv):
            # Zero-cost conversion: straight onto the wire.
            self._send_wire(a, idx, t)

    def _send_wire(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Conversion done: claim the wire now, price the rest forward."""
        actor = self.actors[a]
        c1 = np.maximum(t, self.link_free[idx]) + actor.hold
        self.link_free[idx] = c1
        if actor.two_hops:
            # The service node is claimed at wire completion; wake then.
            self.wait[actor.w_send_nx][idx] = c1
        else:
            self.wait[actor.w_frag_end][idx] = c1 + actor.nh

    def _send_nx(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Wire completion (2hops send): claim the service node now."""
        actor = self.actors[a]
        c2 = np.maximum(t, self.svc_free[idx]) + actor.nx
        self.svc_free[idx] = c2
        self.wait[actor.w_frag_end][idx] = c2 + actor.nh

    def _recv_fragment(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.nh > 0:
            self.wait[actor.w_recv_claim][idx] = t + actor.nh
        else:
            self._recv_claim(a, idx, t)

    def _recv_claim(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Node handling over: claim nx (2hops) or the wire directly."""
        actor = self.actors[a]
        if actor.two_hops:
            c2 = np.maximum(t, self.svc_free[idx]) + actor.nx
            self.svc_free[idx] = c2
            self.wait[actor.w_recv_wire][idx] = c2
        else:
            self._recv_wire(a, idx, t)

    def _recv_wire(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        cw = np.maximum(t, self.link_free[idx]) + actor.hold
        self.link_free[idx] = cw
        self.wait[actor.w_recv_conv][idx] = cw

    def _recv_conv(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        if not self._submit_scalar(self.actors[a].r_conv_r, idx, self.actors[a].conv):
            self._fragment_done(a, idx, t)

    def _fragment_done(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.n_frags <= 1:
            self._message_done(a, idx, t)
            return
        left = self.frags_left[a][idx] - 1
        self.frags_left[a][idx] = left
        more = left > 0
        n_more = np.count_nonzero(more)
        if n_more == more.size:
            self._start_fragment(a, idx, t)
        elif n_more:
            self._start_fragment(a, idx[more], t[more])
            self._message_done(a, idx[~more], t[~more])
        else:
            self._message_done(a, idx, t)

    def _message_done(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        left = self.msgs_left[a][idx] - 1
        self.msgs_left[a][idx] = left
        more = left > 0
        n_more = np.count_nonzero(more)
        if n_more == more.size:
            self._start_message(a, idx, t)
            return
        if n_more:
            self._start_message(a, idx[more], t[more])
            idx, t = idx[~more], t[~more]
        if actor.kind == _K_BURST:
            self._finish_lane(idx, t)
        elif actor.kind == _K_ALT:
            self._alt_cycle(a, idx, t)
        else:  # cyclic probe: end of this cycle's messages
            self._cyclic_next(a, idx, t)

    # -- per-kind cycle logic -------------------------------------------------

    def _alt_cycle(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Start ``alternating`` cycles (draw order: comp work, then budget)."""
        actor = self.actors[a]
        pending, tp = idx, t
        while pending.size:
            if actor.comp_target > 0:
                works = self._draw(a, pending, actor.comp_target)
                instant = self._submit_array(actor.r_comp, pending, works)
                if instant is None:
                    break
                pending, tp = pending[instant], tp[instant]
                if pending.size == 0:
                    break
            if actor.comm_target > 0:
                self._alt_comm(a, pending, tp)
                break
            if actor.comp_target <= 0:  # pragma: no cover - defensive
                break
            # Pure-compute contender whose work draw was ~zero: the
            # object engine loops straight into the next cycle's draw.

    def _alt_comm(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        gens = self.gens[a]
        msgs = np.empty(idx.size, dtype=np.int64)
        for j, i in enumerate(idx):
            budget = gens[i].exponential(actor.comm_target)
            msgs[j] = max(1, int(round(budget / actor.per_message)))
        self.msgs_left[a][idx] = msgs
        self._start_message(a, idx, t)

    def _daemon_sleep(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Draw the daemon's next idle interval and sleep."""
        actor = self.actors[a]
        self.wait[actor.w_idle][idx] = t + self._draw(a, idx, actor.interval)

    def _daemon_wake(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        instant = self._submit_array(actor.r_comp, idx, self._draw(a, idx, actor.work))
        if instant is not None and instant.any():
            # Zero-length burst: straight to the next interval draw.
            self._daemon_sleep(a, idx[instant], t[instant])

    def _compute_comp_done(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        self._finish_lane(idx, t)

    def _cyclic_next(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        """Advance the cyclic probe to its next cycle (or finish)."""
        actor = self.actors[a]
        pending, tp = idx, t
        while pending.size:
            self.cycles_left[a][pending] -= 1
            fin = self.cycles_left[a][pending] <= 0
            if fin.any():
                self._finish_lane(pending[fin], tp[fin])
                pending, tp = pending[~fin], tp[~fin]
                if pending.size == 0:
                    break
            if actor.work > 0:
                if self._submit_scalar(actor.r_comp, pending, actor.work):
                    break
            if actor.msgs_per_cycle > 0:
                self.msgs_left[a][pending] = actor.msgs_per_cycle
                self._start_message(a, pending, tp)
                break
            # Message-free cycle whose comp was instant: fall through to
            # the next cycle at the same instant (bounded by ``cycles``).

    def _cyclic_after_comp(self, a: int, idx: np.ndarray, t: np.ndarray) -> None:
        actor = self.actors[a]
        if actor.msgs_per_cycle > 0:
            self.msgs_left[a][idx] = actor.msgs_per_cycle
            self._start_message(a, idx, t)
        else:
            self._cyclic_next(a, idx, t)

    def _finish_lane(self, idx: np.ndarray, t: np.ndarray) -> None:
        self.result[idx] = t
        self.active[idx] = False
        self.inactive[idx] = True

    # -- driver ----------------------------------------------------------------

    def init(self) -> None:
        """Run every actor's first step at t = 0 (spawn order)."""
        t0 = np.zeros(self.n)
        all_lanes = np.arange(self.n)
        for a, actor in enumerate(self.actors):
            if actor.kind == _K_DAEMON:
                self._daemon_sleep(a, all_lanes, t0)
            elif actor.kind == _K_ALT:
                self._alt_cycle(a, all_lanes, t0)
            elif actor.kind == _K_BURST:
                self.msgs_left[a][all_lanes] = actor.count
                self._start_message(a, all_lanes, t0)
            elif actor.kind == _K_COMPUTE:
                if not self._submit_scalar(actor.r_comp, all_lanes, actor.work):
                    self._finish_lane(all_lanes, t0)
            else:
                self.cycles_left[a][all_lanes] = actor.cycles + 1
                self._cyclic_next(a, all_lanes, t0)
        self._recompute(t0)

    def run(self, max_iters: int = 50_000_000) -> np.ndarray:
        self.init()
        wait = self.wait
        t_cpu = self.t_cpu
        active = self.active
        pending = self.pending
        wait_rows = self.wait_rows
        cpu_rows = self.cpu_rows
        iters = 0
        while True:
            iters += 1
            if iters > max_iters:
                active.fill(False)
                self.inactive.fill(True)
                break
            if wait.shape[0]:
                t_next = wait.min(axis=0)
                np.minimum(t_next, t_cpu, out=t_next)
            else:  # wait-free scenario (e.g. a bare compute probe)
                t_next = t_cpu.copy()
            t_next[self.inactive] = np.nan
            finite = np.isfinite(t_next)
            if not finite.any():
                # Every lane is finished (or, defensively, stalled with
                # no scheduled event — those keep their NaN result).
                active.fill(False)
                self.inactive.fill(True)
                break
            t_next[~finite] = np.nan
            # Every lane with an event sits exactly at its own ``t_next``:
            # advance all virtual service clocks in one sweep (one wake of
            # the fluid scheduler per lane, amortized across every state
            # change this iteration performs at that instant).
            fidx = finite.nonzero()[0]
            self.vtime[fidx] += (t_next[fidx] - self.eps_t0[fidx]) * self.eps_rate[fidx]
            self.eps_t0[fidx] = t_next[fidx]
            # Settle lanes whose sharing horizon fires at their next instant.
            hidx = (t_cpu == t_next).nonzero()[0]
            if hidx.size:
                self._complete_at_horizon(hidx)
            # Wake events, then the horizon's CPU completions, in spawn
            # order. The due matrix is computed before any handler runs:
            # handlers only ever reschedule their own actor's rows, and
            # never to the current instant (all zero-length waits are
            # collapsed inline), so the snapshot stays exact. Inactive
            # lanes carry a NaN ``t_next`` and can never be due; the rare
            # same-instant tie with a lane the probe just finished is
            # processed harmlessly — the lane's result is already
            # recorded and its next ``t_next`` is NaN.
            dm = wait == t_next
            for r in dm.any(axis=1).nonzero()[0]:
                due = dm[r].nonzero()[0]
                wait[r][due] = np.inf
                a, fn = wait_rows[r]
                fn(a, due, t_next[due])
            for r, bucket in enumerate(pending):
                if bucket:
                    pending[r] = []
                    idx = bucket[0] if len(bucket) == 1 else np.unique(np.concatenate(bucket))
                    a, fn = cpu_rows[r]
                    fn(a, idx, t_next[idx])
            self._recompute(t_next)
        return self.result


def run_lanes(
    spec: "SunParagonSpec",
    contenders: Sequence[VectorContender],
    probe: _Probe,
    lane_seeds: Sequence[int],
    max_iters: int = 50_000_000,
) -> np.ndarray:
    """Run one scenario across many lanes; per-lane probe elapsed times.

    *lane_seeds* are the per-replication master seeds (the object path's
    ``RandomStreams(seed).fork(k).seed``). Lanes that fail to finish
    (event-cap breach or a stall) come back as NaN for the caller to
    quarantine — a bad lane degrades the batch, it does not poison it.
    """
    reason = unsupported_reason(spec, contenders, probe)
    if reason is not None:
        raise WorkloadError(f"vector backend cannot run this scenario: {reason}")
    if len(lane_seeds) == 0:
        return np.empty(0)
    actors = _compile_actors(spec, contenders, probe)
    lanes = _Lanes(spec, actors, lane_seeds)
    return lanes.run(max_iters=max_iters)
