"""Time-shared CPU models.

The paper's key empirical observation about the Sun front-end is that
"CPU cycles are split equally among all the processes running on the
Sun with the same priority", which yields the ``slowdown = p + 1``
analytical model. This module provides the *simulated system* that the
analytical model approximates, in two flavours:

``discipline="ps"``
    Ideal (fluid) processor sharing: at every instant the jobs of the
    best priority class each receive ``capacity / n`` service rate.
    This is the limit the analytical model assumes.

``discipline="rr"``
    Quantum-based round-robin with a per-switch context-switch
    overhead — a closer model of a 1996 SunOS scheduler. The
    analytical ``p + 1`` factor is then only approximately right,
    which is one of the sources of the paper's observed ~15 % error.

Jobs are submitted with :meth:`TimeSharedCPU.execute`, which returns an
event firing when the requested amount of *dedicated-CPU seconds* of
work has been served.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict

from ..errors import SimulationError
from ..units import check_nonnegative, check_positive
from .engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import CpuFaultModel

__all__ = ["TimeSharedCPU"]

#: Completion tolerance, in seconds of residual work, below which a job
#: is considered finished (guards against float round-off in the fluid
#: processor-sharing updates).
_EPSILON = 1e-12


class _Job:
    __slots__ = ("jid", "remaining", "priority", "event", "tag", "submitted")

    def __init__(self, jid: int, work: float, priority: int, event: Event, tag: str, now: float) -> None:
        self.jid = jid
        self.remaining = work
        self.priority = priority
        self.event = event
        self.tag = tag
        self.submitted = now


class TimeSharedCPU:
    """A single time-shared processor.

    Parameters
    ----------
    sim:
        The owning simulator.
    capacity:
        Service rate in dedicated-CPU-seconds per second (1.0 = one
        ordinary CPU).
    discipline:
        ``"ps"`` (fluid processor sharing) or ``"rr"`` (round robin).
    quantum:
        Time slice for round robin (ignored for ``"ps"``).
    context_switch:
        Overhead charged whenever round robin switches between two
        *different* jobs (ignored for ``"ps"``).
    name:
        Label used in monitoring output.

    Notes
    -----
    Priorities are *strict* classes: as long as any priority-0 job is
    runnable, priority-1 jobs receive no service. Within a class,
    sharing is equal (PS) or cyclic (RR). This mirrors the paper's
    "same priority" phrasing; all experiments in the reproduction use a
    single class, but priorities are exercised by the unit tests and
    the I/O extension.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = 1.0,
        discipline: str = "ps",
        quantum: float = 0.01,
        context_switch: float = 0.0,
        name: str = "cpu",
        faults: "CpuFaultModel | None" = None,
    ) -> None:
        if discipline not in ("ps", "rr"):
            raise ValueError(f"discipline must be 'ps' or 'rr', got {discipline!r}")
        self.sim = sim
        self.capacity = check_positive(capacity, "capacity")
        self.discipline = discipline
        self.quantum = check_positive(quantum, "quantum") if discipline == "rr" else float(quantum)
        self.context_switch = check_nonnegative(context_switch, "context_switch")
        self.name = name
        #: Optional chaos hook (see :mod:`repro.reliability.faults`):
        #: inflates submitted work to model injected CPU stalls. ``None``
        #: (the default) leaves scheduling byte-for-byte unperturbed.
        self.faults = faults

        self._ids = itertools.count()
        self._jobs: Dict[int, _Job] = {}
        self._wake = sim.event(name=f"{name}-wake")
        # Monitoring.
        self.busy_time = 0.0
        self.switches = 0
        self.jobs_completed = 0
        self.service_by_tag: Dict[str, float] = {}
        # Round-robin state.
        self._rr_queues: Dict[int, Deque[int]] = {}

        sim.process(self._scheduler(), name=f"{name}-scheduler", daemon=True)

    # -- public API -------------------------------------------------------

    @property
    def load(self) -> int:
        """Number of jobs currently resident (running or queued)."""
        return len(self._jobs)

    def execute(self, work: float, priority: int = 0, tag: str = "anon") -> Event:
        """Submit *work* dedicated-CPU-seconds; event fires on completion.

        The event's value is the elapsed (wall-clock) time the job spent
        on the CPU, i.e. its response time — which equals ``work`` only
        in a dedicated system.
        """
        work = check_nonnegative(work, "work")
        done = self.sim.event(name=f"{self.name}-job")
        if work <= _EPSILON:
            done.succeed(0.0)
            return done
        if self.faults is not None:
            work = self.faults.perturb_cpu(work)
        job = _Job(next(self._ids), work, int(priority), done, tag, self.sim.now)
        self._jobs[job.jid] = job
        if self.discipline == "rr":
            self._rr_queues.setdefault(job.priority, deque()).append(job.jid)
        if not self._wake.triggered:
            self._wake.succeed()
        return done

    def run_work(self, work: float, priority: int = 0, tag: str = "anon"):
        """Generator helper: ``yield from cpu.run_work(w)`` inside a process."""
        yield self.execute(work, priority=priority, tag=tag)

    def utilization(self, horizon: float | None = None) -> float:
        """Fraction of time the CPU served at least one job."""
        t = horizon if horizon is not None else self.sim.now
        return self.busy_time / t if t > 0 else 0.0

    # -- internal: shared helpers -------------------------------------------

    def _best_class(self) -> int | None:
        if not self._jobs:
            return None
        return min(job.priority for job in self._jobs.values())

    def _finish(self, job: _Job) -> None:
        del self._jobs[job.jid]
        self.jobs_completed += 1
        job.event.succeed(self.sim.now - job.submitted)

    def _charge(self, job: _Job, service: float) -> None:
        self.service_by_tag[job.tag] = self.service_by_tag.get(job.tag, 0.0) + service

    def _scheduler(self):
        if self.discipline == "ps":
            yield from self._scheduler_ps()
        else:
            yield from self._scheduler_rr()

    # -- fluid processor sharing -----------------------------------------------

    def _scheduler_ps(self):
        sim = self.sim
        while True:
            if not self._jobs:
                self._wake = sim.event(name=f"{self.name}-wake")
                yield self._wake
                continue
            best = self._best_class()
            active = [j for j in self._jobs.values() if j.priority == best]
            rate = self.capacity / len(active)
            horizon = min(j.remaining for j in active) / rate
            self._wake = sim.event(name=f"{self.name}-wake")
            t0 = sim.now
            yield sim.any_of([sim.timeout(horizon), self._wake])
            elapsed = sim.now - t0
            self.busy_time += elapsed
            if elapsed > 0:
                service = elapsed * rate
                for job in active:
                    job.remaining -= service
                    self._charge(job, service)
            for job in [j for j in active if j.remaining <= _EPSILON]:
                self._finish(job)

    # -- quantum round robin ------------------------------------------------------
    #
    # One OS *process* typically presents the CPU with a sequence of
    # work requests (serial chunk, instruction issue, another serial
    # chunk, ...) between blocking points. If every request re-entered
    # the back of the run queue, a fine-grained process would pay a
    # full rotation of latency per request — which no real scheduler
    # imposes. The RR discipline therefore implements *sessions*: jobs
    # share a session through their tag, and a tag that submits more
    # work at the very instant its previous job finished keeps the CPU
    # until its quantum credit runs out, exactly like a continuing
    # process burst.

    def _next_rr_job(self) -> _Job | None:
        best = self._best_class()
        if best is None:
            return None
        queue = self._rr_queues.get(best)
        while queue:
            jid = queue.popleft()
            job = self._jobs.get(jid)
            if job is not None:
                return job
        # Queue for the best class was stale/empty; rebuild from jobs.
        rebuilt: Deque[int] = deque(j.jid for j in self._jobs.values() if j.priority == best)
        self._rr_queues[best] = rebuilt
        if not rebuilt:  # pragma: no cover - defensive
            raise SimulationError("round-robin queues inconsistent with job table")
        return self._jobs[rebuilt.popleft()]

    def _find_continuation(self, tag: str) -> _Job | None:
        """A queued best-class job continuing session *tag*, if any."""
        best = self._best_class()
        for job in self._jobs.values():
            if job.tag == tag and job.priority == best:
                try:
                    self._rr_queues[best].remove(job.jid)
                except (KeyError, ValueError):  # pragma: no cover - defensive
                    continue
                return job
        return None

    def _scheduler_rr(self):
        from .engine import PRIORITY_LATE  # local import avoids cycle at module load

        sim = self.sim
        session_tag: str | None = None
        credit = 0.0
        while True:
            if not self._jobs:
                session_tag = None
                self._wake = sim.event(name=f"{self.name}-wake")
                yield self._wake
                continue
            job = None
            if session_tag is not None and credit > _EPSILON:
                job = self._find_continuation(session_tag)
            if job is None:
                job = self._next_rr_job()
                assert job is not None
                if session_tag is not None and session_tag != job.tag and self.context_switch > 0:
                    self.switches += 1
                    yield sim.timeout(self.context_switch)
                    self.busy_time += self.context_switch
                session_tag = job.tag
                credit = self.quantum
            # (session_tag survives credit exhaustion so the next
            # rotation can account the context switch correctly.)
            slice_work = min(credit * self.capacity, job.remaining)
            duration = slice_work / self.capacity
            yield sim.timeout(duration)
            self.busy_time += duration
            job.remaining -= slice_work
            credit -= duration
            self._charge(job, slice_work)
            if job.remaining <= _EPSILON:
                self._finish(job)
                # Give the finished job's owner a chance to submit its
                # continuation at this same instant before we rotate.
                yield sim.timeout(0, priority=PRIORITY_LATE)
            else:
                self._rr_queues.setdefault(job.priority, deque()).append(job.jid)
