"""Time-shared CPU models.

The paper's key empirical observation about the Sun front-end is that
"CPU cycles are split equally among all the processes running on the
Sun with the same priority", which yields the ``slowdown = p + 1``
analytical model. This module provides the *simulated system* that the
analytical model approximates, in two flavours:

``discipline="ps"``
    Ideal (fluid) processor sharing: at every instant the jobs of the
    best priority class each receive ``capacity / n`` service rate.
    This is the limit the analytical model assumes.

``discipline="rr"``
    Quantum-based round-robin with a per-switch context-switch
    overhead — a closer model of a 1996 SunOS scheduler. The
    analytical ``p + 1`` factor is then only approximately right,
    which is one of the sources of the paper's observed ~15 % error.

Jobs are submitted with :meth:`TimeSharedCPU.execute`, which returns an
event firing when the requested amount of *dedicated-CPU seconds* of
work has been served.

Event-horizon fast-forwarding
-----------------------------
Between job arrivals and completions the round-robin rotation is
perfectly periodic, so its future is computable in closed form: the
scheduler builds an *epoch plan* (head slice, rotation cycle, steady
period), computes the earliest completion analytically, and sleeps in a
single deferred wakeup until that horizon — or until an arrival ends
the epoch early. Service, busy time and context switches are charged
arithmetically when the epoch settles, so the event count is
O(#arrivals + #completions), independent of the quantum. The original
slice-by-slice stepper is retained behind ``exact_stepping=True`` as
the differential-testing oracle; the fast-forward path is required to
agree with it to float round-off (see ``tests/sim/test_fastforward.py``).
Mid-epoch readers of ``busy_time`` / ``service_by_tag`` should call
:meth:`TimeSharedCPU.sync` first (``utilization()`` does so itself);
like the exact stepper, accounting is settled at slice granularity.
"""

from __future__ import annotations

import itertools
from collections import deque
from math import ceil
from typing import TYPE_CHECKING, Any, Deque, Dict, List

from ..errors import SimulationError
from ..units import check_nonnegative, check_positive
from .engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import CpuFaultModel

__all__ = ["TimeSharedCPU", "EPSILON", "rr_completion_slices"]

#: Completion tolerance, in seconds of residual work, below which a job
#: is considered finished (guards against float round-off in the fluid
#: processor-sharing updates).
_EPSILON = 1e-12

#: Public alias: the vector backend (`repro.sim.vector`) mirrors the
#: plan arithmetic below and must share the exact tolerance.
EPSILON = _EPSILON


def rr_completion_slices(remaining: float, slice_work: float) -> "tuple[int, float]":
    """Closed form for one RR rotation candidate: ``(n, work_f)``.

    ``n`` is the number of full-quantum slices (of ``slice_work``
    dedicated-CPU seconds each) the job needs before it completes, and
    ``work_f`` the work done in the final, possibly partial slice. The
    vector backend reuses this exact arithmetic in array form; keep the
    operation order in sync with its mirror in `repro.sim.vector`.
    """
    n = ceil((remaining - _EPSILON) / slice_work)
    if n < 1:
        n = 1
    work_f = remaining - (n - 1) * slice_work
    if work_f > slice_work:
        work_f = slice_work
    return n, work_f


class _Job:
    __slots__ = ("jid", "remaining", "priority", "event", "tag", "submitted")

    def __init__(self, jid: int, work: float, priority: int, event: Event, tag: str, now: float) -> None:
        self.jid = jid
        self.remaining = work
        self.priority = priority
        self.event = event
        self.tag = tag
        self.submitted = now


class _RRPlan:
    """Closed-form description of one round-robin epoch.

    An epoch starts when the scheduler picks a head job and ends at the
    earliest completion in the runnable set (the *horizon*) or at the
    first arrival, whichever comes first. The plan captures the head
    segment (optional in-flight context switch + the head's current
    slice) and the steady rotation cycle, from which service, busy time
    and switch counts at any instant inside the epoch follow
    arithmetically. ``applied_*`` fields make settlement incremental and
    idempotent so :meth:`TimeSharedCPU.sync` can be called mid-epoch.
    """

    __slots__ = (
        "t0", "head", "pre", "pre_charge", "head_run", "head_charge",
        "credit_after", "pre_end", "head_end", "head_completes",
        "head_in_cycle", "best", "cl", "sw1", "swc1", "sws", "swcs",
        "sw1_total", "swc1_total", "swcs_total", "r", "wq",
        "horizon_abs", "comp_job", "comp_n", "comp_k", "comp_work",
        "comp_start", "planned", "head_class_snapshot",
        "applied_busy", "applied_switches", "applied_svc",
    )


class TimeSharedCPU:
    """A single time-shared processor.

    Parameters
    ----------
    sim:
        The owning simulator.
    capacity:
        Service rate in dedicated-CPU-seconds per second (1.0 = one
        ordinary CPU).
    discipline:
        ``"ps"`` (fluid processor sharing) or ``"rr"`` (round robin).
    quantum:
        Time slice for round robin (ignored for ``"ps"``).
    context_switch:
        Overhead charged whenever round robin switches between two
        *different* jobs (ignored for ``"ps"``).
    name:
        Label used in monitoring output.
    exact_stepping:
        When True, the round-robin scheduler steps one quantum slice
        per event (the original implementation, O(virtual_time/quantum)
        events). The default False uses event-horizon fast-forwarding,
        which must agree with the exact stepper to float round-off and
        is differentially tested against it. Ignored for ``"ps"``.

    Notes
    -----
    Priorities are *strict* classes: as long as any priority-0 job is
    runnable, priority-1 jobs receive no service. Within a class,
    sharing is equal (PS) or cyclic (RR). This mirrors the paper's
    "same priority" phrasing; all experiments in the reproduction use a
    single class, but priorities are exercised by the unit tests and
    the I/O extension.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = 1.0,
        discipline: str = "ps",
        quantum: float = 0.01,
        context_switch: float = 0.0,
        name: str = "cpu",
        faults: "CpuFaultModel | None" = None,
        exact_stepping: bool = False,
    ) -> None:
        if discipline not in ("ps", "rr"):
            raise ValueError(f"discipline must be 'ps' or 'rr', got {discipline!r}")
        self.sim = sim
        self.capacity = check_positive(capacity, "capacity")
        self.discipline = discipline
        self.quantum = check_positive(quantum, "quantum") if discipline == "rr" else float(quantum)
        self.context_switch = check_nonnegative(context_switch, "context_switch")
        self.name = name
        self.exact_stepping = bool(exact_stepping)
        #: Optional chaos hook (see :mod:`repro.reliability.faults`):
        #: inflates submitted work to model injected CPU stalls. ``None``
        #: (the default) leaves scheduling byte-for-byte unperturbed.
        self.faults = faults

        self._ids = itertools.count()
        self._jobs: Dict[int, _Job] = {}
        self._wake_name = f"{name}-wake"
        self._wake = sim.event(name=self._wake_name)
        self._kick_cb = self._kick
        # Monitoring.
        self.busy_time = 0.0
        self.switches = 0
        self.jobs_completed = 0
        self.service_by_tag: Dict[str, float] = {}
        # Round-robin state.
        self._rr_queues: Dict[int, Deque[int]] = {}
        self._by_tag: Dict[str, List[_Job]] = {}
        self._plan: _RRPlan | None = None

        sim.process(self._scheduler(), name=f"{name}-scheduler", daemon=True)

    # -- public API -------------------------------------------------------

    @property
    def load(self) -> int:
        """Number of jobs currently resident (running or queued)."""
        return len(self._jobs)

    def execute(self, work: float, priority: int = 0, tag: str = "anon") -> Event:
        """Submit *work* dedicated-CPU-seconds; event fires on completion.

        The event's value is the elapsed (wall-clock) time the job spent
        on the CPU, i.e. its response time — which equals ``work`` only
        in a dedicated system.
        """
        work = check_nonnegative(work, "work")
        done = self.sim.event(name=f"{self.name}-job")
        if work <= _EPSILON:
            done.succeed(0.0)
            return done
        if self.faults is not None:
            work = self.faults.perturb_cpu(work)
        job = _Job(next(self._ids), work, int(priority), done, tag, self.sim.now)
        self._jobs[job.jid] = job
        if self.discipline == "rr":
            self._rr_queues.setdefault(job.priority, deque()).append(job.jid)
            self._by_tag.setdefault(job.tag, []).append(job)
        if not self._wake.triggered:
            self._wake.succeed()
        return done

    def run_work(self, work: float, priority: int = 0, tag: str = "anon"):
        """Generator helper: ``yield from cpu.run_work(w)`` inside a process."""
        yield self.execute(work, priority=priority, tag=tag)

    def sync(self) -> None:
        """Settle fast-forward accounting up to the current instant.

        Charges all rotation slices and context switches that have
        *completed* by ``sim.now`` into ``busy_time`` / ``switches`` /
        ``service_by_tag`` (the same slice-granular view the exact
        stepper maintains). Idempotent; a no-op between epochs, in
        exact-stepping mode, and for the PS discipline (whose epochs
        already settle at their ends).
        """
        plan = self._plan
        if plan is None:
            return
        e = self.sim.now
        if e > plan.comp_start:
            e = plan.comp_start
        if e <= plan.t0:
            return
        self._rr_settle(plan, e)

    def utilization(self, horizon: float | None = None) -> float:
        """Fraction of time the CPU served at least one job."""
        self.sync()
        t = horizon if horizon is not None else self.sim.now
        return self.busy_time / t if t > 0 else 0.0

    # -- internal: shared helpers -------------------------------------------

    def _best_class(self) -> int | None:
        if not self._jobs:
            return None
        return min(job.priority for job in self._jobs.values())

    def _finish(self, job: _Job) -> None:
        del self._jobs[job.jid]
        if self.discipline == "rr":
            bucket = self._by_tag.get(job.tag)
            if bucket is not None:
                try:
                    bucket.remove(job)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del self._by_tag[job.tag]
        self.jobs_completed += 1
        job.event.succeed(self.sim.now - job.submitted)

    def _charge(self, job: _Job, service: float) -> None:
        self.service_by_tag[job.tag] = self.service_by_tag.get(job.tag, 0.0) + service

    def _kick(self) -> None:
        """Deferred-timer callback: fire the scheduler's wakeup."""
        wake = self._wake
        if not wake.triggered:
            wake.succeed()

    def _fresh_wake(self) -> Event:
        """Recycle the wake event when possible instead of allocating.

        A processed wake is reset in place; a triggered-but-unprocessed
        one (an arrival signalled while the scheduler was not waiting)
        is abandoned to pop harmlessly and replaced.
        """
        wake = self._wake
        if wake._processed:
            wake._reset_for_reuse()
        elif wake.triggered:
            wake = self.sim.event(name=self._wake_name)
            self._wake = wake
        return wake

    def _scheduler(self):
        if self.discipline == "ps":
            yield from self._scheduler_ps()
        elif self.exact_stepping:
            yield from self._scheduler_rr()
        else:
            yield from self._scheduler_rr_ff()

    # -- fluid processor sharing -----------------------------------------------

    def _scheduler_ps(self):
        sim = self.sim
        while True:
            if not self._jobs:
                yield self._fresh_wake()
                continue
            best = self._best_class()
            active = [j for j in self._jobs.values() if j.priority == best]
            rate = self.capacity / len(active)
            horizon = min(j.remaining for j in active) / rate
            wake = self._fresh_wake()
            t0 = sim.now
            horizon_abs = t0 + horizon
            handle = sim.defer(horizon, self._kick_cb)
            sim.fastforward_epochs += 1
            yield wake
            elapsed = sim.now - t0
            if sim.now < horizon_abs:
                # Arrival ended the epoch early; the deferred timer is
                # provably still pending (it fires at horizon_abs), so
                # tombstoning it cannot hit a recycled object.
                handle.cancel()
            self.busy_time += elapsed
            if elapsed > 0:
                service = elapsed * rate
                for job in active:
                    job.remaining -= service
                    self._charge(job, service)
            for job in [j for j in active if j.remaining <= _EPSILON]:
                self._finish(job)

    # -- quantum round robin ------------------------------------------------------
    #
    # One OS *process* typically presents the CPU with a sequence of
    # work requests (serial chunk, instruction issue, another serial
    # chunk, ...) between blocking points. If every request re-entered
    # the back of the run queue, a fine-grained process would pay a
    # full rotation of latency per request — which no real scheduler
    # imposes. The RR discipline therefore implements *sessions*: jobs
    # share a session through their tag, and a tag that submits more
    # work at the very instant its previous job finished keeps the CPU
    # until its quantum credit runs out, exactly like a continuing
    # process burst.

    def _next_rr_job(self) -> _Job | None:
        best = self._best_class()
        if best is None:
            return None
        queue = self._rr_queues.get(best)
        while queue:
            jid = queue.popleft()
            job = self._jobs.get(jid)
            if job is not None:
                return job
        # Queue for the best class was stale/empty; rebuild from jobs.
        rebuilt: Deque[int] = deque(j.jid for j in self._jobs.values() if j.priority == best)
        self._rr_queues[best] = rebuilt
        if not rebuilt:  # pragma: no cover - defensive
            raise SimulationError("round-robin queues inconsistent with job table")
        return self._jobs[rebuilt.popleft()]

    def _find_continuation(self, tag: str) -> _Job | None:
        """A queued best-class job continuing session *tag*, if any.

        The per-tag index makes this a dict lookup plus a scan of the
        (typically single-entry) same-tag bucket, instead of a scan of
        the whole job table. Bucket order is submission order, matching
        the original full-table scan.
        """
        best = self._best_class()
        for job in self._by_tag.get(tag, ()):
            if job.priority == best:
                try:
                    self._rr_queues[best].remove(job.jid)
                except (KeyError, ValueError):  # pragma: no cover - defensive
                    continue
                return job
        return None

    def _scheduler_rr(self):
        # The exact slice-per-event stepper: the differential-testing
        # oracle for the fast-forward scheduler below. Its observable
        # semantics (completion times, busy_time, switches, per-tag
        # charges, session continuation) define what fast-forwarding
        # must reproduce; change the two together or not at all.
        from .engine import PRIORITY_LATE  # local import avoids cycle at module load

        sim = self.sim
        session_tag: str | None = None
        credit = 0.0
        while True:
            if not self._jobs:
                session_tag = None
                self._wake = sim.event(name=f"{self.name}-wake")
                yield self._wake
                continue
            job = None
            if session_tag is not None and credit > _EPSILON:
                job = self._find_continuation(session_tag)
            if job is None:
                job = self._next_rr_job()
                assert job is not None
                if session_tag is not None and session_tag != job.tag and self.context_switch > 0:
                    self.switches += 1
                    yield sim.timeout(self.context_switch)
                    self.busy_time += self.context_switch
                session_tag = job.tag
                credit = self.quantum
            # (session_tag survives credit exhaustion so the next
            # rotation can account the context switch correctly.)
            slice_work = min(credit * self.capacity, job.remaining)
            duration = slice_work / self.capacity
            yield sim.timeout(duration)
            self.busy_time += duration
            job.remaining -= slice_work
            credit -= duration
            self._charge(job, slice_work)
            if job.remaining <= _EPSILON:
                self._finish(job)
                # Give the finished job's owner a chance to submit its
                # continuation at this same instant before we rotate.
                yield sim.timeout(0, priority=PRIORITY_LATE)
            else:
                self._rr_queues.setdefault(job.priority, deque()).append(job.jid)

    # -- round robin, event-horizon fast-forward ---------------------------------
    #
    # The epoch plan mirrors the exact stepper's state machine. A head
    # job runs one slice (a session continuation's leftover credit, a
    # fresh quantum, or — after an arrival interrupted an epoch — the
    # unfinished remainder of an in-flight slice). If it does not
    # complete, the rotation [queue..., head] cycles with full quantum
    # slices; the switch pattern repeats every cycle, so slice start
    # times are affine in the cycle index and the earliest completion
    # is a minimum over closed-form candidates. Charges follow the
    # exact stepper's convention: a slice (or switch) is charged when it
    # *ends*; an interrupted slice carries its full charge into the
    # resumed plan so totals match the oracle at every slice boundary.

    def _scheduler_rr_ff(self):
        from .engine import PRIORITY_LATE  # local import avoids cycle at module load

        sim = self.sim
        session_tag: str | None = None
        credit = 0.0
        resume: tuple | None = None
        while True:
            if resume is None and not self._jobs:
                session_tag = None
                credit = 0.0
                yield self._fresh_wake()
                continue
            if resume is not None:
                job, pre, pre_charge, run_work, charge_work, credit_after = resume
                resume = None
            else:
                job = None
                if session_tag is not None and credit > _EPSILON:
                    job = self._find_continuation(session_tag)
                pre = 0.0
                if job is not None:
                    budget = credit
                else:
                    job = self._next_rr_job()
                    assert job is not None
                    if session_tag is not None and session_tag != job.tag and self.context_switch > 0:
                        # Counted at switch start, like the oracle.
                        self.switches += 1
                        pre = self.context_switch
                    budget = self.quantum
                pre_charge = pre
                run_work = min(budget * self.capacity, job.remaining)
                charge_work = run_work
                credit_after = budget - run_work / self.capacity
            plan, delay = self._rr_build_plan(job, pre, pre_charge, run_work, charge_work, credit_after)
            wake = self._fresh_wake()
            handle = sim.defer(delay, self._kick_cb)
            yield wake
            if sim.now >= plan.horizon_abs:
                completer, credit = self._rr_settle_completion(plan)
                session_tag = completer.tag
                self._rr_rebuild(plan, plan.comp_k if plan.comp_n >= 1 else -1)
                self._plan = None
                self._finish(completer)
                # Give the finished job's owner a chance to submit its
                # continuation at this same instant before we rotate.
                yield sim.timeout(0, priority=PRIORITY_LATE)
            else:
                # Arrival mid-epoch: the deferred timer is provably
                # still pending (it fires at horizon_abs > now), so the
                # tombstone cannot hit a recycled object.
                handle.cancel()
                stub = self._rr_settle(plan, sim.now)
                resume = self._rr_finalize_stub(plan, stub)
                self._plan = None

    def _rr_build_plan(
        self,
        head: _Job,
        pre: float,
        pre_charge: float,
        run_work: float,
        charge_work: float,
        credit_after: float,
    ) -> tuple[_RRPlan, float]:
        sim = self.sim
        cap = self.capacity
        q = self.quantum
        cs = self.context_switch
        wq = q * cap

        p = _RRPlan()
        p.t0 = sim.now
        p.head = head
        p.pre = pre
        p.pre_charge = pre_charge
        p.head_run = run_work
        p.head_charge = charge_work
        p.credit_after = credit_after
        p.pre_end = p.t0 + pre
        p.head_end = p.pre_end + run_work / cap
        p.wq = wq
        p.applied_busy = 0.0
        p.applied_switches = 0
        p.applied_svc = {}

        p.head_completes = head.remaining - charge_work <= _EPSILON
        best = self._best_class()
        assert best is not None
        p.best = best
        p.head_in_cycle = head.priority == best and not p.head_completes
        queue = self._rr_queues.get(best) or ()
        rot = [self._jobs[jid] for jid in queue if jid in self._jobs]
        p.planned = {j.jid for j in rot}
        p.planned.add(head.jid)
        p.head_class_snapshot = None
        if not p.head_completes and head.priority != best:
            p.head_class_snapshot = [
                jid for jid in self._rr_queues.get(head.priority, ()) if jid in self._jobs
            ]

        if p.head_completes:
            # The rotation never runs, but _rr_rebuild still needs it to
            # preserve queue order at the epoch's end.
            p.cl = rot
            p.sw1 = p.swc1 = p.sws = p.swcs = ()
            p.sw1_total = 0.0
            p.swc1_total = p.swcs_total = 0
            p.r = 0.0
            p.comp_job = head
            p.comp_n = 0
            p.comp_k = -1
            p.comp_work = charge_work
            p.comp_start = p.pre_end
            horizon = p.head_end
        else:
            cl = rot + [head] if p.head_in_cycle else rot
            if not cl:  # pragma: no cover - defensive
                raise SimulationError("round-robin rotation empty with a non-completing head")
            p.cl = cl
            # First-pass slice starts (head's tag seeds the switch
            # pattern), then one steady cycle whose pattern repeats.
            sw1: List[float] = []
            swc1: List[int] = []
            start1: List[float] = []
            t = p.head_end
            prev = head.tag
            for j in cl:
                if prev is not None and j.tag != prev and cs > 0.0:
                    sw1.append(cs)
                    swc1.append(1)
                    t += cs
                else:
                    sw1.append(0.0)
                    swc1.append(0)
                start1.append(t)
                t += q
                prev = j.tag
            sws: List[float] = []
            swcs: List[int] = []
            start2: List[float] = []
            prev = cl[-1].tag
            for j in cl:
                if prev is not None and j.tag != prev and cs > 0.0:
                    sws.append(cs)
                    swcs.append(1)
                    t += cs
                else:
                    sws.append(0.0)
                    swcs.append(0)
                start2.append(t)
                t += q
                prev = j.tag
            p.sw1, p.swc1, p.sws, p.swcs = sw1, swc1, sws, swcs
            p.sw1_total = sum(sw1)
            p.swc1_total = sum(swc1)
            p.swcs_total = sum(swcs)
            p.r = len(cl) * q + sum(sws)

            best_key = None
            for k, j in enumerate(cl):
                rem = j.remaining - (charge_work if j is head else 0.0)
                if rem <= _EPSILON:  # pragma: no cover - defensive
                    continue
                n, work_f = rr_completion_slices(rem, wq)
                s = start1[k] if n == 1 else start2[k] + (n - 2) * p.r
                key = (s + work_f / cap, s, k)
                if best_key is None or key < best_key:
                    best_key = key
                    p.comp_job = j
                    p.comp_n = n
                    p.comp_k = k
                    p.comp_work = work_f
                    p.comp_start = s
            assert best_key is not None
            horizon = best_key[0]

        delay = horizon - sim.now
        if delay < 0.0:  # pragma: no cover - float guard
            delay = 0.0
        # Recompute the horizon as now + delay so the deferred wakeup's
        # fire time compares float-exactly against it.
        p.horizon_abs = sim.now + delay
        self._plan = p
        sim.fastforward_epochs += 1
        return p, delay

    def _rr_walk(self, p: _RRPlan, e: float) -> tuple[float, int, Dict[int, float], tuple | None]:
        """Plan-relative totals of completed segments at instant *e*.

        Returns ``(busy, switches, service_by_jid, stub)`` where *stub*
        describes the in-progress segment (for resumption) or is None
        when *e* sits exactly on the head-segment boundary cases handled
        by the callers. Charge-on-end convention throughout: a segment
        contributes only once ``e`` has reached its end; switches are
        counted at their start, like the oracle.
        """
        q = self.quantum
        wq = p.wq
        cap = self.capacity
        busy = 0.0
        switches = 0
        svc: Dict[int, float] = {}
        if e < p.pre_end:
            return busy, switches, svc, ("pre", p.pre_end - e)
        busy += p.pre_charge
        if e < p.head_end:
            return busy, switches, svc, ("head", (p.head_end - e) * cap)
        busy += p.head_charge / cap
        svc[p.head.jid] = p.head_charge
        cl = p.cl
        cursor = p.head_end
        for k, j in enumerate(cl):
            switches += p.swc1[k]
            sw = p.sw1[k]
            if e < cursor + sw:
                return busy, switches, svc, ("sw", k, cursor + sw - e)
            busy += sw
            cursor += sw
            if e < cursor + q:
                return busy, switches, svc, ("slice", k, e - cursor)
            busy += q
            svc[j.jid] = svc.get(j.jid, 0.0) + wq
            cursor += q
        if p.r > 0.0:
            m = int((e - cursor) / p.r)
            while m > 0 and cursor + m * p.r > e:  # float-division overshoot guard
                m -= 1
            if m > 0:
                adv = m * p.r
                busy += adv
                switches += m * p.swcs_total
                add = m * wq
                for j in cl:
                    svc[j.jid] = svc.get(j.jid, 0.0) + add
                cursor += adv
        while True:
            for k, j in enumerate(cl):
                switches += p.swcs[k]
                sw = p.sws[k]
                if e < cursor + sw:
                    return busy, switches, svc, ("sw", k, cursor + sw - e)
                busy += sw
                cursor += sw
                if e < cursor + q:
                    return busy, switches, svc, ("slice", k, e - cursor)
                busy += q
                svc[j.jid] = svc.get(j.jid, 0.0) + wq
                cursor += q

    def _rr_apply(self, p: _RRPlan, busy: float, switches: int, svc: Dict[int, float]) -> None:
        """Apply plan-relative totals as deltas against what is already applied."""
        d = busy - p.applied_busy
        if d > 0.0:
            self.busy_time += d
            p.applied_busy = busy
        if switches > p.applied_switches:
            self.switches += switches - p.applied_switches
            p.applied_switches = switches
        applied = p.applied_svc
        jobs = self._jobs
        for jid, total in svc.items():
            delta = total - applied.get(jid, 0.0)
            if delta > 0.0:
                job = jobs[jid]
                job.remaining -= delta
                self._charge(job, delta)
                applied[jid] = total

    def _rr_settle(self, p: _RRPlan, e: float) -> tuple | None:
        busy, switches, svc, stub = self._rr_walk(p, e)
        self._rr_apply(p, busy, switches, svc)
        return stub

    def _rr_settle_completion(self, p: _RRPlan) -> tuple[_Job, float]:
        """Charge the whole epoch through the completing slice, in closed form.

        Integer cycle arithmetic (never the float walk) decides how many
        slices each job completed, so a ULP of drift in boundary times
        cannot drop or double a slice. Returns the completed job and the
        session credit it leaves behind.
        """
        cap = self.capacity
        q = self.quantum
        wq = p.wq
        busy = p.pre_charge + p.head_charge / cap
        switches = 0
        svc: Dict[int, float] = {p.head.jid: p.head_charge}
        n, k = p.comp_n, p.comp_k
        if n >= 1:
            cl = p.cl
            if n == 1:
                switches += sum(p.swc1[: k + 1])
                busy += sum(p.sw1[: k + 1]) + k * q
                for j in cl[:k]:
                    svc[j.jid] = svc.get(j.jid, 0.0) + wq
            else:
                switches += p.swc1_total + (n - 2) * p.swcs_total + sum(p.swcs[: k + 1])
                busy += p.sw1_total + len(cl) * q + (n - 2) * p.r + sum(p.sws[: k + 1]) + k * q
                add_base = (n - 1) * wq
                for idx, j in enumerate(cl):
                    svc[j.jid] = svc.get(j.jid, 0.0) + add_base + (wq if idx < k else 0.0)
            busy += p.comp_work / cap
            svc[p.comp_job.jid] = svc.get(p.comp_job.jid, 0.0) + p.comp_work
            credit_left = q - p.comp_work / cap
        else:
            # Head completed within its own (continuation or resumed) slice.
            credit_left = p.credit_after
        self._rr_apply(p, busy, switches, svc)
        return p.comp_job, credit_left

    def _rr_finalize_stub(self, p: _RRPlan, stub: tuple) -> tuple:
        """Convert an interrupted segment into the next plan's head state.

        Returns ``(job, pre, pre_charge, run_work, charge_work,
        credit_after)``. Rebuilds the run queue to the exact stepper's
        order at this instant as a side effect.
        """
        kind = stub[0]
        if kind == "pre":
            self._rr_rebuild(p, -1)
            return (p.head, stub[1], p.pre_charge, p.head_run, p.head_charge, p.credit_after)
        if kind == "head":
            self._rr_rebuild(p, -1)
            return (p.head, 0.0, 0.0, stub[1], p.head_charge, p.credit_after)
        k = stub[1]
        job = p.cl[k]
        self._rr_rebuild(p, k)
        allot = min(p.wq, job.remaining)
        credit_after = self.quantum - allot / self.capacity
        if kind == "sw":
            # Switch already counted (at its start); carry its full busy
            # charge to the end of the remaining switch time.
            return (job, stub[2], self.context_switch, allot, allot, credit_after)
        run_left = allot - stub[2] * self.capacity
        if run_left < 0.0:  # pragma: no cover - float guard
            run_left = 0.0
        return (job, 0.0, 0.0, run_left, allot, credit_after)

    def _rr_rebuild(self, p: _RRPlan, k: int) -> None:
        """Rebuild the best-class queue to the oracle's order at epoch end.

        ``k < 0``: the rotation never started (epoch ended in the head
        segment) — queue order is unchanged. Otherwise position *k* is
        running (or just completed): later positions have not had their
        slice this cycle and precede the earlier, already re-appended
        ones. Jobs that arrived at the epoch-end instant were appended
        by ``execute`` and stay at the tail.
        """
        jobs = self._jobs
        if k < 0:
            order = [j for j in p.cl if j is not p.head]
        else:
            order = p.cl[k + 1:] + p.cl[:k]
        current = self._rr_queues.get(p.best) or ()
        extras = [jid for jid in current if jid not in p.planned and jid in jobs]
        self._rr_queues[p.best] = deque([j.jid for j in order if j.jid in jobs] + extras)
        if p.head_class_snapshot is not None and k >= 0:
            # A lower-class head finished its slice mid-epoch and
            # re-entered its own class queue then — ahead of any jobs
            # that arrived at the epoch-end instant.
            snapshot = p.head_class_snapshot
            snapset = set(snapshot)
            cur = self._rr_queues.get(p.head.priority) or ()
            kept = [jid for jid in snapshot if jid in jobs]
            tail = [jid for jid in cur if jid not in snapset and jid != p.head.jid and jid in jobs]
            self._rr_queues[p.head.priority] = deque(kept + [p.head.jid] + tail)
