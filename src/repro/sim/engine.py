"""A self-contained discrete-event simulation (DES) kernel.

The kernel implements process-based simulation in the style popularised
by SimPy, but is written from scratch so the reproduction carries no
external simulation dependency. Processes are plain Python generators
that ``yield`` :class:`Event` objects; the simulator advances virtual
time by popping events off a binary heap.

Design notes
------------
* **Determinism.** Events scheduled for the same time are ordered by
  ``(time, priority, sequence)`` where ``sequence`` is a monotonically
  increasing counter. Two runs with the same seed therefore produce
  bit-identical schedules — essential for reproducible experiments.
* **Failure propagation.** An event may *fail* with an exception; the
  exception is thrown into every waiting process. A process that dies
  with an unhandled exception marks its process-event as failed, so the
  error surfaces at :meth:`Simulator.run` rather than being swallowed.
* **Interrupts.** :meth:`Process.interrupt` throws an
  :class:`Interrupt` into a process at the current simulation time,
  which is how preemptive disciplines (and the task-migration
  extension) are built.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(3.0)
...     return "done at %g" % sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
'done at 3'
"""

from __future__ import annotations

import time
from heapq import heappop as _heappop, heappush as _heappush
from sys import getrefcount as _getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import DeadlockError, SimulationError
from ..obs import context as _obs

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]

#: Scheduling priority for events that must run before normal events at
#: the same timestamp (e.g. resource releases).
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1
#: Priority for events that should run after normal events at the same
#: timestamp (e.g. monitoring probes).
PRIORITY_LATE = 2

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    An event goes through three stages:

    1. *untriggered* — created, not yet scheduled;
    2. *triggered* — given a value (or an exception) and placed on the
       simulator's queue;
    3. *processed* — popped from the queue; its callbacks have run.

    Processes wait for events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_name")

    #: Tombstone flag read by the dispatch loop. Plain events are never
    #: cancelled, so they share this class attribute; :class:`Timeout`
    #: shadows it with a real slot to support :meth:`Timeout.cancel`.
    _cancelled = False

    def __init__(self, sim: "Simulator", name: str | None = None) -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._processed = False
        self._name = name

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value and scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with *value* at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with *exception*."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, priority)
        return self

    def _reset_for_reuse(self) -> None:
        """Return a *processed* event to its untriggered state.

        Lets a long-lived owner (a scheduler's wake event) recycle one
        Event object across many trigger/process cycles instead of
        allocating a fresh one per cycle. Only legal once the previous
        cycle fully completed — a triggered-but-unprocessed event still
        sits on the heap and must not be reset under it.
        """
        if not self._processed:
            raise SimulationError(f"cannot reset {self!r}: not yet processed")
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._processed = False

    def __repr__(self) -> str:
        label = self._name or type(self).__name__
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{label} {state} at t={self.sim.now:g}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Created via :meth:`Simulator.timeout`; triggers itself immediately at
    construction, so a Timeout is *always* already scheduled.
    """

    __slots__ = ("delay", "_cancelled")

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay!r}")
        # Flattened initialisation: timeouts are the bulk of all events,
        # so this skips the Event.__init__/_schedule call chain and
        # formats no eager name (__repr__ renders the label on demand).
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._processed = False
        self._name = None
        self._cancelled = False
        self.delay = delay
        # Inlined sim._schedule (this constructor is the kernel's
        # allocation hot spot): one entry tuple, slot-or-heap placement.
        if sim._pend is not None:
            sim._materialize()
        entry = (sim.now + delay, priority, sim._sequence, self)
        sim._sequence += 1
        nxt = sim._next
        if nxt is None:
            heap = sim._heap
            if not heap or entry < heap[0]:
                sim._next = entry
            else:
                _heappush(heap, entry)
        elif entry < nxt:
            _heappush(sim._heap, nxt)
            sim._next = entry
        else:
            _heappush(sim._heap, entry)

    def cancel(self) -> None:
        """Lazily cancel a pending timeout (tombstone, not heap removal).

        The heap entry stays where it is; the dispatch loop discards it
        on pop without running callbacks or advancing counters. O(1),
        versus O(n) eager removal from the middle of the heap. Cancelling
        an already-fired or already-cancelled timeout is a no-op.
        """
        if self._cancelled or self._processed:
            return
        self._cancelled = True
        self.sim.timeouts_cancelled += 1

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else ("processed" if self._processed else "triggered")
        )
        return f"<Timeout({self.delay:g}) {state} at t={self.sim.now:g}>"


class _Deferred:
    """A pooled bare-callback timer — the reusable-timeout fast path.

    Scheduler wakeups (CPU epochs, link drains) need "call ``fn`` at
    time t", nothing more: no value, no waiters, no failure state. A
    full :class:`Event` allocates a callbacks list and carries waiter
    bookkeeping per wakeup; ``_Deferred`` is two slots, recycled through
    a per-simulator free list, and dispatched by an exact-class check
    in the event loop. Create via :meth:`Simulator.defer`.

    Cancellation note: after the deferred has *fired or been popped*,
    the object may already belong to a new owner via the pool — holders
    must only cancel while the schedule is provably still pending (the
    CPU model guards on its epoch horizon for exactly this reason).
    """

    __slots__ = ("fn", "cancelled")

    def __init__(self) -> None:
        self.fn: Callable[[], None] | None = None
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<_Deferred {state} fn={self.fn!r}>"


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the object passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """A running generator, itself usable as an event.

    The process-event triggers when the generator terminates: with the
    generator's return value on normal exit, or failed with the raised
    exception otherwise.
    """

    __slots__ = ("_generator", "_target", "_interrupts", "_resume_cb", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "Process"))
        self._generator = generator
        self._target: Event | None = None
        self._interrupts: list[Interrupt] = []
        # One bound method for the process's whole life, instead of
        # materialising a fresh one per wait on the hot path.
        self._resume_cb = self._resume
        #: Daemon processes (resource schedulers, background services)
        #: may legitimately outlive all useful work; the deadlock check
        #: at :meth:`Simulator.run` ignores them.
        self.daemon = daemon
        # Bootstrap: resume the generator once at the current time.
        init = Event(sim, name="ProcessInit")
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume_cb)
        sim._schedule(init, PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error; interrupting a
        process that is itself the caller is not allowed (a process
        cannot interrupt itself synchronously).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        self._interrupts.append(Interrupt(cause))
        # Detach from the current target; the interrupt is delivered via
        # an urgent zero-delay event so ordering stays deterministic.
        wakeup = Event(self.sim, name="InterruptDelivery")
        wakeup._ok = True
        wakeup._value = None
        wakeup.callbacks.append(self._deliver_interrupt)
        self.sim._schedule(wakeup, PRIORITY_URGENT)

    # -- internal ----------------------------------------------------------

    def _deliver_interrupt(self, _event: Event) -> None:
        if not self.is_alive or not self._interrupts:
            return
        # Unhook from the event we were waiting on (it may still fire, but
        # must no longer resume us for that wait).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        exc = self._interrupts.pop(0)
        self._step(exc, is_exception=True)

    def _resume(self, event: Event) -> None:
        """Resume the generator with *event*'s outcome — the hot path.

        The success branch inlines :meth:`_step` (one Python call per
        event instead of two) and short-circuits the overwhelmingly
        common "yielded a fresh Timeout" case: a just-constructed
        Timeout is known scheduled and unprocessed, so only the
        ownership check remains before attaching.

        On top of that sits the **turbo** shortcut: when the yielded
        timeout is the *only* scheduled entry (ping-pong pattern: one
        process sleeping repeatedly, nothing else pending), has no
        waiters, and fires within the run's time bound, there is no
        observable difference between dispatching it through the queue
        and firing it right here — so it is fired right here, and the
        generator resumed in the same Python frame. One event then
        costs one ``send`` plus a handful of attribute writes: no heap,
        no callback dispatch, no trip back through the run loop. The
        dead timeout is recycled into ``sim._timeout_pool`` when
        ``sys.getrefcount`` proves these two references (the local and
        the refcount argument) are the only ones left — otherwise some
        holder may still inspect it, and it gets the normal processed
        state instead. Gated by ``sim._turbo_limit``: ``None`` outside
        the engine's own run loops, where drivers like ``supervise``
        rely on exact one-event-per-``step()`` accounting.
        """
        self._target = None
        if not event._ok:
            self._step(event._value, is_exception=True)
            return
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        send = self._generator.send
        value = event._value
        # Loop-invariant within one frame: only the engine's run loops
        # assign _turbo_limit, and _timeout_pool is created once.
        limit = sim._turbo_limit
        pool = sim._timeout_pool
        while True:
            try:
                target = send(value)
            except StopIteration as stop:
                sim.active_process = prev
                self._ok = True
                self._value = stop.value
                sim._schedule(self, PRIORITY_NORMAL)
                return
            except Interrupt as exc:
                # An unhandled interrupt terminates the process as failed.
                sim.active_process = prev
                self._ok = False
                self._value = exc
                sim._schedule(self, PRIORITY_NORMAL)
                return
            except BaseException as exc:  # noqa: BLE001 - deliberate: fail the event
                sim.active_process = prev
                self._ok = False
                self._value = exc
                sim._schedule(self, PRIORITY_NORMAL)
                return
            if target.__class__ is Timeout:
                # The pending-lane invariant makes the sole-entry check
                # one identity test: _pend is target ⇒ target is this
                # simulator's, fresh, unprocessed, and the queue is
                # otherwise empty.
                if sim._pend is target:
                    if limit is not None and not target.callbacks and sim._pend_when <= limit:
                        sim._pend = None
                        sim.now = sim._pend_when
                        sim.events_processed += 1
                        value = target._value
                        if _getrefcount(target) == 2:
                            # Provably sole owner: skip the processed-
                            # state writes (unobservable) and recycle.
                            if sim._t_cache is None:
                                sim._t_cache = target
                            else:
                                pool.append(target)
                        else:
                            target.callbacks = None
                            target._processed = True
                        continue
                    sim.active_process = prev
                    self._target = target
                    target.callbacks.append(self._resume_cb)
                    return
                if target.sim is sim and not target._processed:
                    sim.active_process = prev
                    self._target = target
                    target.callbacks.append(self._resume_cb)
                    return
            sim.active_process = prev
            self._attach(target)
            return

    def _step(self, value: Any, *, is_exception: bool) -> None:
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        try:
            if is_exception:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            sim.active_process = prev
            self._ok = True
            self._value = stop.value
            sim._schedule(self, PRIORITY_NORMAL)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process as failed.
            sim.active_process = prev
            self._ok = False
            self._value = exc
            sim._schedule(self, PRIORITY_NORMAL)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate: fail the event
            sim.active_process = prev
            self._ok = False
            self._value = exc
            sim._schedule(self, PRIORITY_NORMAL)
            return
        finally:
            if sim.active_process is self:
                sim.active_process = prev
        self._attach(target)

    def _attach(self, target: Any) -> None:
        """Generic wait-target validation and hookup (the cold tail)."""
        sim = self.sim
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self._name!r} yielded {target!r}; processes must yield Event objects"
            )
            self._step(err, is_exception=True)
            return
        if target.sim is not sim:
            err = SimulationError("yielded an event belonging to a different Simulator")
            self._step(err, is_exception=True)
            return
        if target._processed:
            # Already-processed events resume the process immediately (at
            # the current time) with the stored value.
            immediate = Event(sim, name="ImmediateResume")
            immediate._ok = target._ok
            immediate._value = target._value
            immediate.callbacks.append(self._resume_cb)
            sim._schedule(immediate, PRIORITY_URGENT)
            self._target = immediate
            return
        self._target = target
        assert target.callbacks is not None
        target.callbacks.append(self._resume_cb)


class Condition(Event):
    """Base class for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str) -> None:
        super().__init__(sim, name=name)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all events in a condition must share a Simulator")
        self._pending = sum(1 for ev in self.events if not ev._processed)
        if self._pending == 0:
            self._finalize()
        else:
            for ev in self.events:
                if not ev._processed:
                    assert ev.callbacks is not None
                    ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        self._check()

    def _check(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _finalize(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        # Filter on *processed*, not merely triggered: a Timeout is
        # triggered from birth, but only counts once it has fired.
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}


class AllOf(Condition):
    """Triggers when *all* child events have been processed successfully.

    The value is a dict mapping each child event to its value.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="AllOf")

    def _check(self) -> None:
        if self._pending == 0 and not self.triggered:
            self.succeed(self._results())

    def _finalize(self) -> None:
        self.succeed(self._results())


class AnyOf(Condition):
    """Triggers when *any* child event has been processed successfully."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="AnyOf")

    def _check(self) -> None:
        if not self.triggered and self._pending < len(self.events):
            self.succeed(self._results())

    def _finalize(self) -> None:
        self.succeed(self._results())


class Simulator:
    """The event loop: owns virtual time and the pending-event heap.

    ``__slots__`` keeps the per-simulator attribute access on the hot
    dispatch path dict-free — experiments create thousands of
    simulators and step millions of events through them.
    """

    __slots__ = (
        "now",
        "active_process",
        "_heap",
        "_next",
        "_pend",
        "_pend_when",
        "_pend_prio",
        "_sequence",
        "_processes",
        "events_processed",
        "fastforward_epochs",
        "timeouts_cancelled",
        "_deferred_pool",
        "_timeout_pool",
        "_t_cache",
        "_turbo_limit",
        "_profile_hist",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self.active_process: Process | None = None
        self._heap: list[tuple[float, int, int, Any]] = []
        # One-entry "next event" buffer: an entry that sorts before the
        # whole heap parks here and is popped without any heap traffic.
        # Ping-pong patterns (one process waiting on one timeout — the
        # common case in every drain loop) never touch the heap at all.
        # Invariant: self._next is None or self._next <= every heap entry.
        self._next: tuple[float, int, int, Any] | None = None
        # Pending-sole-timeout lane: when the queue is COMPLETELY empty,
        # timeout() parks the new Timeout here as three bare slots —
        # no entry tuple, no sequence draw — because in the ping-pong
        # pattern the turbo shortcut in Process._resume will consume it
        # before anything else needs the queue. Invariant: _pend is not
        # None ⇒ _next is None and the heap is empty. Every other
        # queue consumer calls _materialize() first, which spills the
        # lane into a real _next entry (drawing its sequence number at
        # spill time, which precedes any later entry's — FIFO holds).
        self._pend: Timeout | None = None
        self._pend_when = 0.0
        self._pend_prio = PRIORITY_NORMAL
        self._sequence = 0
        self._processes: list[Process] = []
        #: Events stepped by this simulator over its lifetime.
        self.events_processed = 0
        #: Closed-form epoch fast-forwards performed by resource models
        #: (each one replaces what quantum-stepping would have simulated
        #: as many events). Incremented by the models, exported to obs.
        self.fastforward_epochs = 0
        #: Timeouts lazily cancelled (tombstoned) rather than fired.
        self.timeouts_cancelled = 0
        # Free list of recycled _Deferred wakeup timers (see defer()).
        self._deferred_pool: list[_Deferred] = []
        # Free list of provably-unreferenced Timeout objects, fed by the
        # ping-pong turbo path in Process._resume (see there for the
        # ownership proof) and drained by timeout().
        self._timeout_pool: list[Timeout] = []
        # Single-slot front of the timeout free list: in the ping-pong
        # steady state exactly one recycled timeout circulates, and two
        # attribute moves are cheaper than list append + pop.
        self._t_cache: Timeout | None = None
        # Virtual-time bound under which Process._resume may fire a
        # sole-entry timeout in place ("turbo"), bypassing the heap and
        # the dispatch loop entirely. ``None`` disables the shortcut —
        # the default, so external drivers (step(), supervise()) retain
        # exact one-event-per-step semantics; the run loops set it.
        self._turbo_limit: float | None = None
        # Per-step timing sink, bound by run()/run_until() only when an
        # observability context with profile_steps is active.
        self._profile_hist = None

    # -- event factories ----------------------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, priority: int = PRIORITY_NORMAL) -> Timeout:
        """Create an event that fires ``delay`` time units from now.

        Body-inlined twin of :class:`Timeout`'s constructor — this
        factory is called once per simulated event, and skipping the
        ``__init__`` frame is worth the duplication on the hot path.
        """
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay!r}")
        # Recycled timeouts (cache slot, then pool) come from the turbo
        # sole-owner path, which skips the processed-state writes — so
        # sim, the empty callbacks list, _ok=True, _processed=False and
        # _cancelled=False all still hold, and only the per-fire
        # payload needs arming.
        t = self._t_cache
        if t is not None:
            self._t_cache = None
            t._value = value
            t.delay = delay
        elif self._timeout_pool:
            t = self._timeout_pool.pop()
            t._value = value
            t.delay = delay
        else:
            t = Timeout.__new__(Timeout)
            t.sim = self
            t.callbacks = []
            t._name = None
            t._ok = True
            t._value = value
            t._processed = False
            t._cancelled = False
            t.delay = delay
        if self._pend is None and self._next is None and not self._heap:
            # Empty queue: park in the pending lane (see __init__).
            self._pend = t
            self._pend_when = self.now + delay
            self._pend_prio = priority
            return t
        if self._pend is not None:
            self._materialize()
        entry = (self.now + delay, priority, self._sequence, t)
        self._sequence += 1
        nxt = self._next
        if nxt is None:
            heap = self._heap
            if not heap or entry < heap[0]:
                self._next = entry
            else:
                _heappush(heap, entry)
        elif entry < nxt:
            _heappush(self._heap, nxt)
            self._next = entry
        else:
            _heappush(self._heap, entry)
        return t

    def _materialize(self) -> None:
        """Spill the pending-lane timeout into a real ``_next`` entry.

        By the lane invariant the queue was empty when the lane filled,
        and every later producer spills it before scheduling, so the
        ``_next`` slot is necessarily free here.
        """
        t = self._pend
        self._pend = None
        self._next = (self._pend_when, self._pend_prio, self._sequence, t)
        self._sequence += 1

    def timeout_at(self, when: float, value: Any = None, priority: int = PRIORITY_NORMAL) -> Timeout:
        """Create an event that fires at *absolute* time ``when``.

        The horizon-discipline resources precompute absolute completion
        instants in closed form; scheduling them directly avoids the
        ``now + (when - now)`` round-trip of :meth:`timeout`, which can
        drift the fire time by one ulp and break bit-exactness against
        the event-stepped implementations.
        """
        delay = when - self.now
        if delay < 0:
            raise ValueError(f"timeout_at target {when!r} is in the past (now={self.now!r})")
        pool = self._timeout_pool
        if pool:
            t = pool.pop()
            t._value = value
            t.delay = delay
        else:
            t = Timeout.__new__(Timeout)
            t.sim = self
            t.callbacks = []
            t._name = None
            t._ok = True
            t._value = value
            t._processed = False
            t._cancelled = False
            t.delay = delay
        if self._pend is not None:
            self._materialize()
        entry = (when, priority, self._sequence, t)
        self._sequence += 1
        nxt = self._next
        if nxt is None:
            heap = self._heap
            if not heap or entry < heap[0]:
                self._next = entry
            else:
                _heappush(heap, entry)
        elif entry < nxt:
            _heappush(self._heap, nxt)
            self._next = entry
        else:
            _heappush(self._heap, entry)
        return t

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
        daemon: bool = False,
    ) -> Process:
        """Start *generator* as a simulation process.

        Pass ``daemon=True`` for background services (schedulers,
        monitors) that idle forever by design — they are excluded from
        deadlock detection.
        """
        proc = Process(self, generator, name=name, daemon=daemon)
        self._processes.append(proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all *events* succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering when any of *events* succeeds."""
        return AnyOf(self, events)

    def defer(
        self, delay: float, fn: Callable[[], None], priority: int = PRIORITY_NORMAL
    ) -> _Deferred:
        """Schedule bare callback *fn* to run ``delay`` from now.

        The fast-path alternative to ``timeout(...)`` + callback for
        internal wakeups: no Event allocation (timers are recycled
        through a free list), no waiter bookkeeping, just one heap entry
        and one call. The returned handle's :meth:`_Deferred.cancel`
        tombstones it — but see the class docstring for when cancelling
        is safe. Not yield-able: processes cannot wait on a deferred.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        pool = self._deferred_pool
        timer = pool.pop() if pool else _Deferred()
        timer.fn = fn
        timer.cancelled = False
        self._schedule(timer, priority, delay)
        return timer

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Any, priority: int, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        if self._pend is not None:
            self._materialize()
        entry = (self.now + delay, priority, self._sequence, event)
        self._sequence += 1
        nxt = self._next
        if nxt is None:
            heap = self._heap
            # Tuple comparison never reaches the (incomparable) event:
            # the sequence field is unique.
            if not heap or entry < heap[0]:
                self._next = entry
            else:
                _heappush(heap, entry)
        elif entry < nxt:
            _heappush(self._heap, nxt)
            self._next = entry
        else:
            _heappush(self._heap, entry)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if self._pend is not None:
            return self._pend_when
        if self._next is not None:
            return self._next[0]
        return self._heap[0][0] if self._heap else float("inf")

    def pending_processes(self) -> list[Process]:
        """Still-alive non-daemon processes (the deadlock suspects)."""
        return [p for p in self._processes if p.is_alive and not p.daemon]

    def pending_names(self, limit: int = 5) -> tuple[str, ...]:
        """Names of up to *limit* pending processes, for diagnostics."""
        return tuple((p._name or "?") for p in self.pending_processes()[:limit])

    def step(self) -> None:
        """Process the next queue entry (advancing ``now`` to its time).

        The profiling check happens *before* dispatch: with no
        observability context requesting per-step timings the event is
        dispatched by :meth:`_step_once` with zero instrumentation —
        no clock reads, no histogram lookups. A popped entry that turns
        out to be a cancelled tombstone is discarded without advancing
        time or counters.
        """
        if self._pend is not None:
            self._materialize()
        if self._next is None and not self._heap:
            raise SimulationError("step() called on an empty event queue")
        prof = self._profile_hist
        if prof is None:
            self._step_once()
            return
        t0 = time.perf_counter()
        self._step_once()
        prof.observe(time.perf_counter() - t0)

    def _step_once(self) -> None:
        """Bare event dispatch — the instrument-free hot path."""
        entry = self._next
        if entry is not None:
            self._next = None
        else:
            entry = _heappop(self._heap)
        event = entry[3]
        cls = event.__class__
        if cls is _Deferred:
            # Bare-callback timer: recycle before calling so the
            # callback can immediately re-defer onto the same object.
            fn = event.fn
            event.fn = None
            self._deferred_pool.append(event)
            if event.cancelled:
                return
            self.now = entry[0]
            fn()
            self.events_processed += 1
            return
        if event._cancelled:
            return
        when = entry[0]
        if when < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)
        self.events_processed += 1
        # An event that failed and had nobody waiting for it would
        # silently swallow its exception; surface it instead — unless it
        # is a Process (a detached process may legitimately fail only if
        # someone inspects it; we still surface it to avoid silent loss).
        if event._ok is False and not callbacks and not isinstance(event, Process):
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or simulated time reaches *until*.

        When an observability context is active the run is wrapped in a
        ``sim.run`` span and feeds the ``sim.events`` counter and
        ``sim.run_seconds`` histogram; with no context the only cost
        over the bare loop is one ``None`` check.

        Raises
        ------
        DeadlockError
            If the queue empties while some started process is still
            alive (waiting on an event that can never fire).
        """
        ctx = _obs.current()
        if ctx is None:
            self._run_impl(until)
            return
        with ctx.tracer.span("sim.run", kind="sim") as sp:
            self._observed_drive(ctx, sp, lambda: self._run_impl(until))

    def _observed_drive(self, ctx, sp, drive: Callable[[], None]) -> None:
        """Execute *drive* under the active context's instruments."""
        e0 = self.events_processed
        f0 = self.fastforward_epochs
        c0 = self.timeouts_cancelled
        t0 = time.perf_counter()
        if ctx.profile_steps:
            self._profile_hist = ctx.metrics.histogram("sim.step_seconds")
        try:
            drive()
        finally:
            self._profile_hist = None
            stepped = self.events_processed - e0
            sp.set("events", stepped)
            sp.set("sim_time", self.now)
            ctx.metrics.counter("sim.events").inc(stepped)
            # Fast-forward savings are only exported when they happened,
            # so runs that never touch an epoch model keep their metric
            # key set (and snapshot diffs) unchanged.
            epochs = self.fastforward_epochs - f0
            if epochs > 0:
                sp.set("fastforward_epochs", epochs)
                ctx.metrics.counter("sim.fastforward_epochs").inc(epochs)
            cancelled = self.timeouts_cancelled - c0
            if cancelled > 0:
                ctx.metrics.counter("sim.timeouts_cancelled").inc(cancelled)
            ctx.metrics.histogram("sim.run_seconds").observe(time.perf_counter() - t0)

    def _run_impl(self, until: Optional[float] = None) -> None:
        # Pre-check profiling once: the obs-off loop inlines the bare
        # dispatcher (mirroring _step_once statement for statement)
        # instead of paying a call and re-testing ``_profile_hist`` per
        # event.
        heap = self._heap
        profiled = self._profile_hist is not None
        step = self._step_once if not profiled else self.step
        if until is not None:
            if until < self.now:
                raise ValueError(f"until={until!r} is in the past (now={self.now!r})")
            if not profiled:
                self._turbo_limit = until
            try:
                while True:
                    if self._pend is not None:
                        self._materialize()
                    nxt = self._next
                    if nxt is not None:
                        when = nxt[0]
                    elif heap:
                        when = heap[0][0]
                    else:
                        break
                    if when > until:
                        break
                    step()
            finally:
                self._turbo_limit = None
            self.now = until
            return
        if profiled:
            while self._pend is not None or self._next is not None or heap:
                step()
        else:
            # Inlined _step_once — the drain loop the benchmarks time.
            pool = self._deferred_pool
            self._turbo_limit = float("inf")
            try:
                while True:
                    entry = self._next
                    if entry is not None:
                        self._next = None
                    elif heap:
                        entry = _heappop(heap)
                    elif self._pend is not None:
                        # A turbo miss (e.g. a timeout with waiters
                        # attached) can leave the lane occupied.
                        self._materialize()
                        continue
                    else:
                        break
                    event = entry[3]
                    cls = event.__class__
                    if cls is _Deferred:
                        fn = event.fn
                        event.fn = None
                        pool.append(event)
                        if event.cancelled:
                            continue
                        self.now = entry[0]
                        fn()
                        self.events_processed += 1
                        continue
                    if event._cancelled:
                        continue
                    when = entry[0]
                    if when < self.now:
                        raise SimulationError("event queue corrupted: time went backwards")
                    self.now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    self.events_processed += 1
                    if event._ok is False and not callbacks and not isinstance(event, Process):
                        raise event._value
            finally:
                self._turbo_limit = None
        zombies = self.pending_processes()
        if zombies:
            names = ", ".join(repr(p._name) for p in zombies[:5])
            raise DeadlockError(
                f"event queue empty but {len(zombies)} process(es) still waiting: {names}",
                sim_time=self.now,
                pending=tuple(p._name or "?" for p in zombies[:5]),
                pending_count=len(zombies),
                queue_size=0,
            )

    def run_until(self, event: Event, limit: float | None = None) -> Any:
        """Run until *event* has been processed; return its value.

        Unlike :meth:`run`, this tolerates non-terminating background
        processes (contention generators): the loop simply stops once
        the event of interest fires. Re-raises the event's exception if
        it failed.

        Parameters
        ----------
        event:
            The event to wait for.
        limit:
            Optional wall-of-virtual-time safety limit; exceeded ⇒
            :class:`~repro.errors.DeadlockError`.
        """
        ctx = _obs.current()
        if ctx is None:
            return self._run_until_impl(event, limit)
        with ctx.tracer.span("sim.run_until", kind="sim") as sp:
            out: list[Any] = []
            self._observed_drive(
                ctx, sp, lambda: out.append(self._run_until_impl(event, limit))
            )
            return out[0]

    def _run_until_impl(self, event: Event, limit: float | None = None) -> Any:
        heap = self._heap
        profiled = self._profile_hist is not None
        step = self._step_once if not profiled else self.step
        if not profiled:
            self._turbo_limit = limit if limit is not None else float("inf")
        try:
            while not event._processed:
                if self._pend is not None:
                    self._materialize()
                nxt = self._next
                if nxt is None and not heap:
                    raise DeadlockError(
                        f"event queue empty before {event!r} fired",
                        sim_time=self.now,
                        pending=self.pending_names(),
                        pending_count=len(self.pending_processes()),
                        queue_size=0,
                    )
                if limit is not None:
                    when = nxt[0] if nxt is not None else heap[0][0]
                    if when > limit:
                        raise DeadlockError(
                            f"{event!r} did not fire before t={limit!r}",
                            sim_time=self.now,
                            pending=self.pending_names(),
                            pending_count=len(self.pending_processes()),
                            queue_size=len(heap) + (nxt is not None),
                        )
                step()
        finally:
            self._turbo_limit = None
        if not event.ok:
            raise event.value
        return event.value

    def run_process(self, generator: Generator[Event, Any, Any], until: Optional[float] = None) -> Any:
        """Convenience: start *generator*, run, and return its value.

        Re-raises the process's exception if it failed.
        """
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise DeadlockError(
                f"process {proc!r} did not finish by until={until!r}",
                sim_time=self.now,
                pending=self.pending_names(),
                pending_count=len(self.pending_processes()),
                queue_size=len(self._heap) + (self._next is not None) + (self._pend is not None),
            )
        if not proc.ok:
            raise proc.value
        return proc.value
