"""A self-contained discrete-event simulation (DES) kernel.

The kernel implements process-based simulation in the style popularised
by SimPy, but is written from scratch so the reproduction carries no
external simulation dependency. Processes are plain Python generators
that ``yield`` :class:`Event` objects; the simulator advances virtual
time by popping events off a binary heap.

Design notes
------------
* **Determinism.** Events scheduled for the same time are ordered by
  ``(time, priority, sequence)`` where ``sequence`` is a monotonically
  increasing counter. Two runs with the same seed therefore produce
  bit-identical schedules — essential for reproducible experiments.
* **Failure propagation.** An event may *fail* with an exception; the
  exception is thrown into every waiting process. A process that dies
  with an unhandled exception marks its process-event as failed, so the
  error surfaces at :meth:`Simulator.run` rather than being swallowed.
* **Interrupts.** :meth:`Process.interrupt` throws an
  :class:`Interrupt` into a process at the current simulation time,
  which is how preemptive disciplines (and the task-migration
  extension) are built.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(3.0)
...     return "done at %g" % sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
'done at 3'
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import DeadlockError, SimulationError
from ..obs import context as _obs

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "Simulator",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]

#: Scheduling priority for events that must run before normal events at
#: the same timestamp (e.g. resource releases).
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1
#: Priority for events that should run after normal events at the same
#: timestamp (e.g. monitoring probes).
PRIORITY_LATE = 2

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    An event goes through three stages:

    1. *untriggered* — created, not yet scheduled;
    2. *triggered* — given a value (or an exception) and placed on the
       simulator's queue;
    3. *processed* — popped from the queue; its callbacks have run.

    Processes wait for events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "_name")

    def __init__(self, sim: "Simulator", name: str | None = None) -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._processed = False
        self._name = name

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value and scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with *value* at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with *exception*."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, priority)
        return self

    def __repr__(self) -> str:
        label = self._name or type(self).__name__
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{label} {state} at t={self.sim.now:g}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Created via :meth:`Simulator.timeout`; triggers itself immediately at
    construction, so a Timeout is *always* already scheduled.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay!r}")
        # No eager name: formatting one per timeout used to be the
        # single hottest line of the simulator (timeouts are the bulk
        # of all events); __repr__ renders the label on demand instead.
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, priority, delay)

    def __repr__(self) -> str:
        state = "processed" if self._processed else "triggered"
        return f"<Timeout({self.delay:g}) {state} at t={self.sim.now:g}>"


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the object passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """A running generator, itself usable as an event.

    The process-event triggers when the generator terminates: with the
    generator's return value on normal exit, or failed with the raised
    exception otherwise.
    """

    __slots__ = ("_generator", "_target", "_interrupts", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "Process"))
        self._generator = generator
        self._target: Event | None = None
        self._interrupts: list[Interrupt] = []
        #: Daemon processes (resource schedulers, background services)
        #: may legitimately outlive all useful work; the deadlock check
        #: at :meth:`Simulator.run` ignores them.
        self.daemon = daemon
        # Bootstrap: resume the generator once at the current time.
        init = Event(sim, name="ProcessInit")
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init, PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error; interrupting a
        process that is itself the caller is not allowed (a process
        cannot interrupt itself synchronously).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        if self.sim.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        self._interrupts.append(Interrupt(cause))
        # Detach from the current target; the interrupt is delivered via
        # an urgent zero-delay event so ordering stays deterministic.
        wakeup = Event(self.sim, name="InterruptDelivery")
        wakeup._ok = True
        wakeup._value = None
        wakeup.callbacks.append(self._deliver_interrupt)
        self.sim._schedule(wakeup, PRIORITY_URGENT)

    # -- internal ----------------------------------------------------------

    def _deliver_interrupt(self, _event: Event) -> None:
        if not self.is_alive or not self._interrupts:
            return
        # Unhook from the event we were waiting on (it may still fire, but
        # must no longer resume us for that wait).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        exc = self._interrupts.pop(0)
        self._step(exc, is_exception=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, is_exception=False)
        else:
            self._step(event._value, is_exception=True)

    def _step(self, value: Any, *, is_exception: bool) -> None:
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        try:
            if is_exception:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            sim.active_process = prev
            self._ok = True
            self._value = stop.value
            sim._schedule(self, PRIORITY_NORMAL)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process as failed.
            sim.active_process = prev
            self._ok = False
            self._value = exc
            sim._schedule(self, PRIORITY_NORMAL)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate: fail the event
            sim.active_process = prev
            self._ok = False
            self._value = exc
            sim._schedule(self, PRIORITY_NORMAL)
            return
        finally:
            if sim.active_process is self:
                sim.active_process = prev

        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self._name!r} yielded {target!r}; processes must yield Event objects"
            )
            self._step(err, is_exception=True)
            return
        if target.sim is not sim:
            err = SimulationError("yielded an event belonging to a different Simulator")
            self._step(err, is_exception=True)
            return
        if target._processed:
            # Already-processed events resume the process immediately (at
            # the current time) with the stored value.
            immediate = Event(sim, name="ImmediateResume")
            immediate._ok = target._ok
            immediate._value = target._value
            immediate.callbacks.append(self._resume)
            sim._schedule(immediate, PRIORITY_URGENT)
            self._target = immediate
            return
        self._target = target
        assert target.callbacks is not None
        target.callbacks.append(self._resume)


class Condition(Event):
    """Base class for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str) -> None:
        super().__init__(sim, name=name)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all events in a condition must share a Simulator")
        self._pending = sum(1 for ev in self.events if not ev._processed)
        if self._pending == 0:
            self._finalize()
        else:
            for ev in self.events:
                if not ev._processed:
                    assert ev.callbacks is not None
                    ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        self._check()

    def _check(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _finalize(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        # Filter on *processed*, not merely triggered: a Timeout is
        # triggered from birth, but only counts once it has fired.
        return {ev: ev._value for ev in self.events if ev._processed and ev._ok}


class AllOf(Condition):
    """Triggers when *all* child events have been processed successfully.

    The value is a dict mapping each child event to its value.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="AllOf")

    def _check(self) -> None:
        if self._pending == 0 and not self.triggered:
            self.succeed(self._results())

    def _finalize(self) -> None:
        self.succeed(self._results())


class AnyOf(Condition):
    """Triggers when *any* child event has been processed successfully."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="AnyOf")

    def _check(self) -> None:
        if not self.triggered and self._pending < len(self.events):
            self.succeed(self._results())

    def _finalize(self) -> None:
        self.succeed(self._results())


class Simulator:
    """The event loop: owns virtual time and the pending-event heap.

    ``__slots__`` keeps the per-simulator attribute access on the hot
    dispatch path dict-free — experiments create thousands of
    simulators and step millions of events through them.
    """

    __slots__ = (
        "now",
        "active_process",
        "_heap",
        "_sequence",
        "_processes",
        "events_processed",
        "_profile_hist",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self.active_process: Process | None = None
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._processes: list[Process] = []
        #: Events stepped by this simulator over its lifetime.
        self.events_processed = 0
        # Per-step timing sink, bound by run()/run_until() only when an
        # observability context with profile_steps is active.
        self._profile_hist = None

    # -- event factories ----------------------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, priority: int = PRIORITY_NORMAL) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value, priority)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
        daemon: bool = False,
    ) -> Process:
        """Start *generator* as a simulation process.

        Pass ``daemon=True`` for background services (schedulers,
        monitors) that idle forever by design — they are excluded from
        deadlock detection.
        """
        proc = Process(self, generator, name=name, daemon=daemon)
        self._processes.append(proc)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event triggering when all *events* succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event triggering when any of *events* succeeds."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        heapq.heappush(self._heap, (self.now + delay, priority, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def pending_processes(self) -> list[Process]:
        """Still-alive non-daemon processes (the deadlock suspects)."""
        return [p for p in self._processes if p.is_alive and not p.daemon]

    def pending_names(self, limit: int = 5) -> tuple[str, ...]:
        """Names of up to *limit* pending processes, for diagnostics."""
        return tuple((p._name or "?") for p in self.pending_processes()[:limit])

    def step(self) -> None:
        """Process exactly one event (advancing ``now`` to its time).

        The profiling check happens *before* dispatch: with no
        observability context requesting per-step timings the event is
        dispatched by :meth:`_step_once` with zero instrumentation —
        no clock reads, no histogram lookups.
        """
        if not self._heap:
            raise SimulationError("step() called on an empty event queue")
        prof = self._profile_hist
        if prof is None:
            self._step_once()
            return
        t0 = time.perf_counter()
        self._step_once()
        prof.observe(time.perf_counter() - t0)

    def _step_once(self) -> None:
        """Bare event dispatch — the instrument-free hot path."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        self.events_processed += 1
        # An event that failed and had nobody waiting for it would
        # silently swallow its exception; surface it instead — unless it
        # is a Process (a detached process may legitimately fail only if
        # someone inspects it; we still surface it to avoid silent loss).
        if event._ok is False and not callbacks and not isinstance(event, Process):
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or simulated time reaches *until*.

        When an observability context is active the run is wrapped in a
        ``sim.run`` span and feeds the ``sim.events`` counter and
        ``sim.run_seconds`` histogram; with no context the only cost
        over the bare loop is one ``None`` check.

        Raises
        ------
        DeadlockError
            If the queue empties while some started process is still
            alive (waiting on an event that can never fire).
        """
        ctx = _obs.current()
        if ctx is None:
            self._run_impl(until)
            return
        with ctx.tracer.span("sim.run", kind="sim") as sp:
            self._observed_drive(ctx, sp, lambda: self._run_impl(until))

    def _observed_drive(self, ctx, sp, drive: Callable[[], None]) -> None:
        """Execute *drive* under the active context's instruments."""
        e0 = self.events_processed
        t0 = time.perf_counter()
        if ctx.profile_steps:
            self._profile_hist = ctx.metrics.histogram("sim.step_seconds")
        try:
            drive()
        finally:
            self._profile_hist = None
            stepped = self.events_processed - e0
            sp.set("events", stepped)
            sp.set("sim_time", self.now)
            ctx.metrics.counter("sim.events").inc(stepped)
            ctx.metrics.histogram("sim.run_seconds").observe(time.perf_counter() - t0)

    def _run_impl(self, until: Optional[float] = None) -> None:
        if until is not None and until < self.now:
            raise ValueError(f"until={until!r} is in the past (now={self.now!r})")
        # Pre-check profiling once: the obs-off loop binds the bare
        # dispatcher and the heap locally instead of re-testing
        # ``_profile_hist`` per event.
        heap = self._heap
        step = self._step_once if self._profile_hist is None else self.step
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return
            step()
        if until is not None:
            self.now = until
        zombies = self.pending_processes()
        if zombies and until is None:
            names = ", ".join(repr(p._name) for p in zombies[:5])
            raise DeadlockError(
                f"event queue empty but {len(zombies)} process(es) still waiting: {names}",
                sim_time=self.now,
                pending=tuple(p._name or "?" for p in zombies[:5]),
                pending_count=len(zombies),
                queue_size=0,
            )

    def run_until(self, event: Event, limit: float | None = None) -> Any:
        """Run until *event* has been processed; return its value.

        Unlike :meth:`run`, this tolerates non-terminating background
        processes (contention generators): the loop simply stops once
        the event of interest fires. Re-raises the event's exception if
        it failed.

        Parameters
        ----------
        event:
            The event to wait for.
        limit:
            Optional wall-of-virtual-time safety limit; exceeded ⇒
            :class:`~repro.errors.DeadlockError`.
        """
        ctx = _obs.current()
        if ctx is None:
            return self._run_until_impl(event, limit)
        with ctx.tracer.span("sim.run_until", kind="sim") as sp:
            out: list[Any] = []
            self._observed_drive(
                ctx, sp, lambda: out.append(self._run_until_impl(event, limit))
            )
            return out[0]

    def _run_until_impl(self, event: Event, limit: float | None = None) -> Any:
        heap = self._heap
        step = self._step_once if self._profile_hist is None else self.step
        while not event._processed:
            if not heap:
                raise DeadlockError(
                    f"event queue empty before {event!r} fired",
                    sim_time=self.now,
                    pending=self.pending_names(),
                    pending_count=len(self.pending_processes()),
                    queue_size=0,
                )
            if limit is not None and heap[0][0] > limit:
                raise DeadlockError(
                    f"{event!r} did not fire before t={limit!r}",
                    sim_time=self.now,
                    pending=self.pending_names(),
                    pending_count=len(self.pending_processes()),
                    queue_size=len(self._heap),
                )
            step()
        if not event.ok:
            raise event.value
        return event.value

    def run_process(self, generator: Generator[Event, Any, Any], until: Optional[float] = None) -> Any:
        """Convenience: start *generator*, run, and return its value.

        Re-raises the process's exception if it failed.
        """
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise DeadlockError(
                f"process {proc!r} did not finish by until={until!r}",
                sim_time=self.now,
                pending=self.pending_names(),
                pending_count=len(self.pending_processes()),
                queue_size=len(self._heap),
            )
        if not proc.ok:
            raise proc.value
        return proc.value
