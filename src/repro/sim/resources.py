"""Generic waitable resources for the DES kernel.

Provides the classic counted FIFO resource (:class:`FifoResource`) used
for links and service nodes, plus a small :class:`Store` used for
bounded producer/consumer queues (the CM2 sequencer's instruction
lookahead queue is a ``Store`` of parallel instructions).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from ..errors import SimulationError
from .engine import Event, Simulator, PRIORITY_URGENT

__all__ = ["Request", "FifoResource", "Store"]


class Request(Event):
    """The event returned by :meth:`FifoResource.request`.

    Succeeds when the resource grants a unit to the requester. Must be
    passed back to :meth:`FifoResource.release` exactly once.
    """

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "FifoResource") -> None:
        super().__init__(resource.sim, name=f"Request({resource.name})")
        self.resource = resource
        self.granted = False


class FifoResource:
    """A resource with ``capacity`` identical units and FIFO granting.

    Examples
    --------
    >>> sim = Simulator()
    >>> link = FifoResource(sim, capacity=1, name="link")
    >>> def user(sim, link):
    ...     req = link.request()
    ...     yield req
    ...     yield sim.timeout(1.0)
    ...     link.release(req)
    >>> _ = sim.process(user(sim, link)); _ = sim.process(user(sim, link))
    >>> sim.run(); sim.now
    2.0
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        # Monitoring accumulators.
        self._busy_area = 0.0  # integral of in_use over time
        self._queue_area = 0.0  # integral of queue length over time
        self._last_change = sim.now
        self.total_grants = 0

    # -- public API ---------------------------------------------------------

    @property
    def in_use(self) -> int:
        """Number of units currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for one unit; the returned event fires when granted."""
        self._account()
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return the unit held by *request* to the pool."""
        if request.resource is not self:
            raise SimulationError("release() of a request from a different resource")
        self._account()
        if request.granted:
            self._in_use -= 1
            request.granted = False
        else:
            # Cancel a still-queued request.
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError("request was never granted nor queued") from None
        while self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def acquire(self, hold: float) -> Generator[Event, Any, None]:
        """Generator helper: request, hold for *hold* seconds, release.

        Usage inside a process: ``yield from resource.acquire(1.5)``.
        Interrupt-safe: an interrupt delivered while still *queued*
        cancels the request instead of leaking it (release() handles
        both granted and still-waiting requests).
        """
        req = self.request()
        try:
            yield req
            yield self.sim.timeout(hold)
        finally:
            self.release(req)

    # -- statistics -----------------------------------------------------------

    def utilization(self, elapsed: float | None = None) -> float:
        """Time-averaged fraction of capacity in use since construction."""
        self._account()
        horizon = elapsed if elapsed is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return self._busy_area / (horizon * self.capacity)

    def mean_queue_length(self) -> float:
        """Time-averaged number of waiting requests."""
        self._account()
        if self.sim.now <= 0:
            return 0.0
        return self._queue_area / self.sim.now

    # -- internal --------------------------------------------------------------

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        req.granted = True
        self.total_grants += 1
        req.succeed(self, priority=PRIORITY_URGENT)

    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_area += dt * self._in_use
            self._queue_area += dt * len(self._waiting)
            self._last_change = self.sim.now


class Store:
    """A bounded FIFO buffer of Python objects.

    ``put`` blocks (the returned event stays untriggered) while the
    store is full; ``get`` blocks while it is empty. Used for the CM2
    instruction lookahead queue and for mailbox-style app coordination.
    """

    def __init__(self, sim: Simulator, capacity: int | float = float("inf"), name: str = "store") -> None:
        if capacity != float("inf") and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Deposit *item*; the event fires once there is room."""
        ev = Event(self.sim, name=f"Put({self.name})")
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item, priority=PRIORITY_URGENT)
            ev.succeed(None, priority=PRIORITY_URGENT)
        elif not self.is_full:
            self._items.append(item)
            ev.succeed(None, priority=PRIORITY_URGENT)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; the event's value is the item."""
        ev = Event(self.sim, name=f"Get({self.name})")
        if self._items:
            ev.succeed(self._items.popleft(), priority=PRIORITY_URGENT)
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(None, priority=PRIORITY_URGENT)
        else:
            self._getters.append(ev)
        return ev
