"""Generic waitable resources for the DES kernel.

Provides the classic counted FIFO resource (:class:`FifoResource`) used
for links and service nodes, plus a small :class:`Store` used for
bounded producer/consumer queues (the CM2 sequencer's instruction
lookahead queue is a ``Store`` of parallel instructions).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from ..errors import SimulationError
from .engine import Event, Simulator, PRIORITY_URGENT

__all__ = ["Request", "FifoResource", "Store"]


class Request(Event):
    """The event returned by :meth:`FifoResource.request`.

    Succeeds when the resource grants a unit to the requester. Must be
    passed back to :meth:`FifoResource.release` exactly once.
    """

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "FifoResource") -> None:
        super().__init__(resource.sim, name=f"Request({resource.name})")
        self.resource = resource
        self.granted = False


class FifoResource:
    """A resource with ``capacity`` identical units and FIFO granting.

    Examples
    --------
    >>> sim = Simulator()
    >>> link = FifoResource(sim, capacity=1, name="link")
    >>> def user(sim, link):
    ...     req = link.request()
    ...     yield req
    ...     yield sim.timeout(1.0)
    ...     link.release(req)
    >>> _ = sim.process(user(sim, link)); _ = sim.process(user(sim, link))
    >>> sim.run(); sim.now
    2.0
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        # Monitoring accumulators.
        self._busy_area = 0.0  # integral of in_use over time
        self._queue_area = 0.0  # integral of queue length over time
        self._last_change = sim.now
        self.total_grants = 0
        # Horizon-discipline (occupy) state. A resource commits to one
        # discipline at first use; see :meth:`occupy`.
        self._mode: str | None = None
        self._free_at = 0.0  # absolute instant the FIFO drain completes
        self._hold_sum = 0.0  # total occupancy ever submitted
        self._wait_sum = 0.0  # total queueing delay ever committed to
        self._pending_starts: Deque[float] = deque()  # future grant instants

    # -- public API ---------------------------------------------------------

    @property
    def in_use(self) -> int:
        """Number of units currently granted."""
        if self._mode == "horizon":
            return 1 if self._free_at > self.sim.now else 0
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        if self._mode == "horizon":
            self._prune_starts()
            return len(self._pending_starts)
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for one unit; the returned event fires when granted."""
        if self._mode == "horizon":
            raise SimulationError(
                f"resource {self.name!r} already uses occupy(); "
                "request()/release() cannot be mixed with the horizon discipline"
            )
        self._mode = "events"
        self._account()
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return the unit held by *request* to the pool."""
        if request.resource is not self:
            raise SimulationError("release() of a request from a different resource")
        self._account()
        if request.granted:
            self._in_use -= 1
            request.granted = False
        else:
            # Cancel a still-queued request.
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError("request was never granted nor queued") from None
        while self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def acquire(self, hold: float) -> Generator[Event, Any, None]:
        """Generator helper: request, hold for *hold* seconds, release.

        Usage inside a process: ``yield from resource.acquire(1.5)``.
        Interrupt-safe: an interrupt delivered while still *queued*
        cancels the request instead of leaking it (release() handles
        both granted and still-waiting requests).
        """
        req = self.request()
        try:
            yield req
            yield self.sim.timeout(hold)
        finally:
            self.release(req)

    def occupy(self, hold: float) -> tuple[Event, float]:
        """Closed-form FIFO drain: occupy one unit for *hold* seconds.

        The horizon-discipline fast path for capacity-1 FIFO servers
        (the wire of a :class:`~repro.sim.link.Link`): because grants
        are strictly FIFO and the hold time is known at submission, the
        grant and completion instants are computable immediately —
        ``start = max(now, free_at)``, ``completion = start + hold`` —
        so the whole request/grant/hold/release exchange collapses into
        a *single* pre-scheduled completion event instead of three.
        Busy-time and queue-length integrals are carried analytically
        (sums of holds and committed waits) rather than by stepping.

        Returns ``(done, queued)``: ``done`` fires at the completion
        instant; ``queued`` is the queueing delay (seconds between
        submission and grant), known up front.

        Completion instants are bit-identical to the event-stepped
        ``request()``/``release()`` path. Two deliberate differences:
        the discipline is reservation-based, so a process interrupted
        while "waiting" still holds its slot (there is no cancellation),
        and a resource commits to one discipline at first use — mixing
        ``occupy()`` with ``request()`` raises ``SimulationError``.
        """
        if self.capacity != 1:
            raise SimulationError(
                f"occupy() requires a capacity-1 resource, got capacity={self.capacity}"
            )
        if self._mode == "events":
            raise SimulationError(
                f"resource {self.name!r} already uses request()/release(); "
                "occupy() cannot be mixed with the event discipline"
            )
        if hold < 0:
            raise ValueError(f"hold must be >= 0, got {hold!r}")
        self._mode = "horizon"
        now = self.sim.now
        free = self._free_at
        start = free if free > now else now
        completion = start + hold
        self._free_at = completion
        self._hold_sum += hold
        queued = start - now
        if queued > 0.0:
            self._wait_sum += queued
            self._pending_starts.append(start)
        else:
            queued = 0.0
        self.total_grants += 1
        return self.sim.timeout_at(completion, value=self), queued

    # -- statistics -----------------------------------------------------------

    def utilization(self, elapsed: float | None = None) -> float:
        """Time-averaged fraction of capacity in use since construction."""
        horizon = elapsed if elapsed is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        if self._mode == "horizon":
            overhang = self._free_at - self.sim.now
            busy = self._hold_sum - (overhang if overhang > 0.0 else 0.0)
            return busy / (horizon * self.capacity)
        self._account()
        return self._busy_area / (horizon * self.capacity)

    def mean_queue_length(self) -> float:
        """Time-averaged number of waiting requests."""
        now = self.sim.now
        if now <= 0:
            return 0.0
        if self._mode == "horizon":
            self._prune_starts()
            future = sum(s - now for s in self._pending_starts)
            return (self._wait_sum - future) / now
        self._account()
        return self._queue_area / now

    # -- internal --------------------------------------------------------------

    def _prune_starts(self) -> None:
        """Drop committed grant instants that are now in the past."""
        starts = self._pending_starts
        now = self.sim.now
        while starts and starts[0] <= now:
            starts.popleft()

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        req.granted = True
        self.total_grants += 1
        req.succeed(self, priority=PRIORITY_URGENT)

    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_area += dt * self._in_use
            self._queue_area += dt * len(self._waiting)
            self._last_change = self.sim.now


class Store:
    """A bounded FIFO buffer of Python objects.

    ``put`` blocks (the returned event stays untriggered) while the
    store is full; ``get`` blocks while it is empty. Used for the CM2
    instruction lookahead queue and for mailbox-style app coordination.
    """

    def __init__(self, sim: Simulator, capacity: int | float = float("inf"), name: str = "store") -> None:
        if capacity != float("inf") and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Deposit *item*; the event fires once there is room."""
        ev = Event(self.sim, name=f"Put({self.name})")
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item, priority=PRIORITY_URGENT)
            ev.succeed(None, priority=PRIORITY_URGENT)
        elif not self.is_full:
            self._items.append(item)
            ev.succeed(None, priority=PRIORITY_URGENT)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; the event's value is the item."""
        ev = Event(self.sim, name=f"Get({self.name})")
        if self._items:
            ev.succeed(self._items.popleft(), priority=PRIORITY_URGENT)
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(None, priority=PRIORITY_URGENT)
        else:
            self._getters.append(ev)
        return ev
