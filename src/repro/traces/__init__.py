"""Instruction traces: IR, benchmark generators, dedicated analysis."""

from .analysis import DedicatedMeasurement, measure_dedicated_cm2
from .gauss import gauss_cm2_trace, gauss_flops
from .instructions import Instruction, Parallel, Reduction, Serial, Trace, Transfer
from .library import bitonic_cm2_trace, matmul_cm2_trace, matmul_sun_cost, sort_sun_cost
from .sor import SOR_FLOPS_PER_POINT, sor_cm2_trace, sor_sun_work
from .synthetic import synthetic_cm2_trace

__all__ = [
    "DedicatedMeasurement",
    "Instruction",
    "Parallel",
    "Reduction",
    "SOR_FLOPS_PER_POINT",
    "Serial",
    "Trace",
    "Transfer",
    "bitonic_cm2_trace",
    "gauss_cm2_trace",
    "matmul_cm2_trace",
    "matmul_sun_cost",
    "sort_sun_cost",
    "gauss_flops",
    "measure_dedicated_cm2",
    "sor_cm2_trace",
    "sor_sun_work",
    "synthetic_cm2_trace",
]
