"""Synthetic benchmark traces (the paper's generality check, §3.1.2).

"We have performed a large number of experiments using synthetic
benchmarks, which employ a representative subset of the operations
provided by the CM2 and used in high-performance programs, in order to
verify the generality of the model."

:func:`synthetic_cm2_trace` draws a random instruction mix with a
target serial-work fraction; sweeping that fraction explores both
branches of the §3.1.2 ``max()`` formula.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..platforms.specs import SunCM2Spec
from .instructions import Parallel, Reduction, Serial, Trace, Transfer

__all__ = ["synthetic_cm2_trace"]


def synthetic_cm2_trace(
    rng: np.random.Generator,
    total_work: float,
    serial_fraction: float,
    spec: SunCM2Spec,
    n_instructions: int = 200,
    reduction_share: float = 0.1,
    transfer_words: float = 0.0,
    name: str = "synthetic",
) -> Trace:
    """A random CM2 instruction mix.

    Parameters
    ----------
    rng:
        Source of randomness (instruction sizes are exponential draws,
        normalised to the exact totals).
    total_work:
        Total dedicated work in the stream, seconds (serial + parallel).
    serial_fraction:
        Share of *total_work* executed serially on the Sun.
    spec:
        Ground-truth rates (unused for sizing, kept for signature
        symmetry with the other generators and future per-op costs).
    n_instructions:
        Number of serial/parallel instruction pairs to draw.
    reduction_share:
        Fraction of the parallel instructions emitted as blocking
        :class:`Reduction` ops instead of :class:`Parallel`.
    transfer_words:
        When positive, a transfer of this many words (as one message)
        is placed at the start and the end of the stream.
    """
    if total_work <= 0:
        raise WorkloadError(f"total_work must be > 0, got {total_work!r}")
    if not 0.0 <= serial_fraction <= 1.0:
        raise WorkloadError(f"serial_fraction must be in [0, 1], got {serial_fraction!r}")
    if n_instructions < 1:
        raise WorkloadError(f"need >= 1 instruction, got {n_instructions!r}")
    if not 0.0 <= reduction_share <= 1.0:
        raise WorkloadError(f"reduction_share must be in [0, 1], got {reduction_share!r}")

    serial_total = total_work * serial_fraction
    parallel_total = total_work - serial_total

    def _chunks(total: float) -> np.ndarray:
        raw = rng.exponential(1.0, size=n_instructions)
        return raw / raw.sum() * total

    serial_chunks = _chunks(serial_total) if serial_total > 0 else np.zeros(n_instructions)
    parallel_chunks = (
        _chunks(parallel_total) if parallel_total > 0 else np.zeros(n_instructions)
    )

    instructions = []
    if transfer_words > 0:
        instructions.append(Transfer(size=transfer_words, count=1, direction="out"))
    for s, p in zip(serial_chunks, parallel_chunks):
        if s > 0:
            instructions.append(Serial(float(s)))
        if p > 0:
            if rng.random() < reduction_share:
                instructions.append(Reduction(float(p)))
            else:
                instructions.append(Parallel(float(p)))
    if transfer_words > 0:
        instructions.append(Transfer(size=transfer_words, count=1, direction="in"))
    return Trace(instructions, name=name)
