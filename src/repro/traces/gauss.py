"""Instruction traces for the Gaussian Elimination benchmark.

Figure 3 of the paper executes "a Gaussian Elimination program on a
matrix of size M × M+1 on the CM2": per elimination step, the Sun runs
serial bookkeeping (loop control, pivot administration) while the CM2
performs the rank-1 row update over the shrinking trailing submatrix.

**SIMD execution shape.** A CM-Fortran elimination step updates the
*full* M×(M+1) array under a WHERE mask — the virtual-processor grid is
fixed, masked-off elements still occupy their processors — so every
iteration issues the same amount of back-end work, ``M·(M+1)``
element-updates. (Contrast a MIMD implementation, which would shrink
the trailing submatrix each step; :func:`gauss_flops` documents the
*useful* flops for the real NumPy workload.)

The trace's work amounts come from the ground-truth per-operation rates
in :class:`~repro.platforms.specs.SunCM2Spec`. With the default rates
the serial stream costs ``ge_serial_per_iter`` per step and the
parallel stream ``M·(M+1) · ge_parallel_per_element``; under
``p = 3`` CPU-bound contenders, iterations are serial-bound (and thus
contention-sensitive) exactly while ``4 × serial > parallel``, which
places the paper's crossover at ``M ≈ 200``, matching Figure 3.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..platforms.specs import SunCM2Spec
from .instructions import Parallel, Reduction, Serial, Trace, Transfer

__all__ = ["gauss_cm2_trace", "gauss_flops"]


def gauss_flops(m: int) -> int:
    """Floating-point operations of GE on an M×(M+1) augmented system.

    Forward elimination: ``Σ_k (m−k−1) · (m−k+1) · 2 ≈ 2M³/3``; plus
    back substitution ``≈ M²``.
    """
    forward = sum(2 * (m - k - 1) * (m - k + 1) for k in range(m - 1))
    back = m * m
    return forward + back


def gauss_cm2_trace(
    m: int,
    spec: SunCM2Spec,
    sync_every: int = 64,
    include_transfers: bool = False,
) -> Trace:
    """GE on the CM2: M elimination steps over an M×(M+1) system.

    Parameters
    ----------
    m:
        System dimension.
    spec:
        Ground-truth Sun/CM2 rates.
    sync_every:
        Every *sync_every* steps the Sun performs a stability check
        that needs a value back from the CM2 (a :class:`Reduction`),
        capping how far the instruction stream can run ahead. CM-
        Fortran GE without partial pivoting streams freely otherwise.
    include_transfers:
        Ship the augmented matrix to the CM2 first (M messages of M+1
        words) and the solution vector back (1 message of M words).
    """
    if m < 2:
        raise WorkloadError(f"system dimension must be >= 2, got {m!r}")
    if sync_every < 1:
        raise WorkloadError(f"sync_every must be >= 1, got {sync_every!r}")

    half_serial = 0.5 * spec.ge_serial_per_iter
    # SIMD full-array masked update: constant per-step back-end work.
    update = m * (m + 1) * spec.ge_parallel_per_element
    instructions = []
    if include_transfers:
        instructions.append(Transfer(size=float(m + 1), count=m, direction="out"))
    for k in range(m):
        instructions.append(Serial(half_serial))
        if (k + 1) % sync_every == 0:
            # Periodic stability check: the Sun waits for a scalar.
            instructions.append(Reduction((m - k + 1) * spec.ge_parallel_per_element))
        instructions.append(Parallel(update))
        instructions.append(Serial(half_serial))
    # Back substitution: one parallel pass over the triangular system.
    instructions.append(Parallel(m * m * spec.ge_parallel_per_element))
    if include_transfers:
        instructions.append(Transfer(size=float(m), count=1, direction="in"))
    return Trace(instructions, name=f"gauss-cm2-m{m}")
