"""Traces for the §2 library tasks: matrix multiplication and sorting.

"Our model provides a realistic estimate of the costs of computing a
task on the front-end machine (with one algorithm) as compared to
moving the data across the network link and computing the task
(perhaps with a different algorithm) on the back-end machine."

Each task therefore comes as a *pair*: a front-end dedicated cost
(derived from the operation counts of the workstation algorithm) and a
back-end instruction trace (the data-parallel algorithm), plus the
shipping pattern. The dispatch machinery
(:func:`repro.experiments.dispatch.library_dispatch`) feeds both sides
into Equation (1).
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..platforms.specs import SunCM2Spec
from ..workloads.matmul import matmul_flops
from ..workloads.sorting import bitonic_stages, sort_compare_ops
from .instructions import Parallel, Serial, Trace, Transfer

__all__ = [
    "matmul_cm2_trace",
    "matmul_sun_cost",
    "bitonic_cm2_trace",
    "sort_sun_cost",
]

#: Messages ship in rows/chunks of this many words on the CM2 link.
_CHUNK = 1024


def _shipping(total_words: int, direction: str) -> Transfer:
    count = max(1, -(-total_words // _CHUNK))
    return Transfer(size=total_words / count, count=count, direction=direction)


def matmul_sun_cost(n: int, spec: SunCM2Spec) -> float:
    """Dedicated front-end seconds of the workstation matmul."""
    return matmul_flops(n) * spec.sun_flop_time


def matmul_cm2_trace(n: int, spec: SunCM2Spec, include_transfers: bool = True) -> Trace:
    """SIMD matmul: n outer-product steps over the full n×n array.

    Per step the Sun broadcasts loop control (serial) and the CM2
    performs one multiply-accumulate over all n² elements.
    """
    if n < 1:
        raise WorkloadError(f"dimension must be >= 1, got {n!r}")
    step_work = 2 * n * n * spec.elementwise_op_time  # one MAC per element
    control = 2.0e-4
    instructions = []
    if include_transfers:
        instructions.append(_shipping(2 * n * n, "out"))  # both operands
    for _ in range(n):
        instructions.append(Serial(control))
        instructions.append(Parallel(step_work))
    if include_transfers:
        instructions.append(_shipping(n * n, "in"))  # the product
    return Trace(instructions, name=f"matmul-cm2-n{n}")


def sort_sun_cost(n: int, spec: SunCM2Spec) -> float:
    """Dedicated front-end seconds of the workstation quicksort."""
    return sort_compare_ops(n, "quicksort") * spec.sun_compare_time


def bitonic_cm2_trace(n: int, spec: SunCM2Spec, include_transfers: bool = True) -> Trace:
    """SIMD bitonic sort: one Parallel instruction per network stage.

    Each stage gathers the partner lane and applies the masked
    min/max across all n keys (~3 element-wise ops).
    """
    stages = bitonic_stages(n)  # validates power-of-two length
    stage_work = 3 * n * spec.elementwise_op_time
    control = 1.5e-4
    instructions = []
    if include_transfers:
        instructions.append(_shipping(n, "out"))
    for _ in range(stages):
        instructions.append(Serial(control))
        instructions.append(Parallel(stage_work))
    if include_transfers:
        instructions.append(_shipping(n, "in"))
    return Trace(instructions, name=f"bitonic-cm2-n{n}")
