"""Instruction traces for the SOR (Laplace) benchmark.

The paper uses "an SOR algorithm, which solves Laplace's equation" as
one of its two scientific benchmarks. Two execution shapes appear:

* **SOR on the CM2** (context of Figure 1): each sweep is one big
  parallel grid update issued by the Sun, with a small serial loop-
  control cost and a periodic convergence-check reduction;
* **SOR on the Sun** (Figures 7/8): the whole solver is front-end CPU
  work.

Work amounts are derived from the ground-truth per-operation rates in
the platform specs — i.e. they state what this program *actually costs*
on the simulated hardware. The analytical model never reads them; it
measures a dedicated run (or is handed user-supplied dedicated costs,
as the paper assumes).
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..platforms.specs import SunCM2Spec, SunParagonSpec
from .instructions import Parallel, Reduction, Serial, Trace, Transfer

__all__ = ["sor_cm2_trace", "sor_sun_work", "SOR_FLOPS_PER_POINT"]

#: Floating-point work per grid point per SOR sweep: a 5-point stencil
#: (4 adds, 1 multiply) plus the relaxation update (1 multiply, 1 add).
SOR_FLOPS_PER_POINT = 7


def sor_cm2_trace(
    m: int,
    iterations: int,
    spec: SunCM2Spec,
    check_every: int = 10,
    include_transfers: bool = False,
) -> Trace:
    """SOR on the CM2: *iterations* parallel sweeps over an M×M grid.

    Parameters
    ----------
    m:
        Grid dimension.
    iterations:
        Number of SOR sweeps.
    spec:
        Ground-truth Sun/CM2 rates.
    check_every:
        A convergence check (a global-norm :class:`Reduction`, which
        stalls the Sun) runs every *check_every* sweeps.
    include_transfers:
        Ship the M×M grid to the CM2 first and back afterwards, as M
        messages of M words each way (the Figure 1 communication
        pattern).
    """
    if m < 1:
        raise WorkloadError(f"grid dimension must be >= 1, got {m!r}")
    if iterations < 1:
        raise WorkloadError(f"need >= 1 iteration, got {iterations!r}")
    if check_every < 1:
        raise WorkloadError(f"check_every must be >= 1, got {check_every!r}")

    sweep_work = m * m * spec.sor_parallel_per_point
    instructions = []
    if include_transfers:
        instructions.append(Transfer(size=float(m), count=m, direction="out"))
    for k in range(iterations):
        instructions.append(Serial(spec.sor_serial_per_iter))
        instructions.append(Parallel(sweep_work))
        if (k + 1) % check_every == 0:
            # Global residual norm: the Sun must wait for the value.
            instructions.append(Reduction(0.2 * sweep_work))
    if include_transfers:
        instructions.append(Transfer(size=float(m), count=m, direction="in"))
    return Trace(instructions, name=f"sor-cm2-m{m}")


def sor_sun_work(m: int, iterations: int, spec: SunParagonSpec) -> float:
    """Dedicated front-end CPU seconds of SOR on the Sun (Figures 7/8).

    ``iterations × M² × flops/point × seconds/flop``.
    """
    if m < 1:
        raise WorkloadError(f"grid dimension must be >= 1, got {m!r}")
    if iterations < 1:
        raise WorkloadError(f"need >= 1 iteration, got {iterations!r}")
    return iterations * m * m * SOR_FLOPS_PER_POINT * spec.sun_flop_time
