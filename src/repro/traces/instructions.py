"""Instruction-stream intermediate representation.

A heterogeneous application's task is represented the way Figure 2 of
the paper draws it: an ordered stream of

* :class:`Serial` instructions — scalar/serial work executed on the
  front-end (the Sun), subject to CPU contention;
* :class:`Parallel` instructions — work shipped to the back-end
  sequencer (CM2) or partition (Paragon); the front-end only pays a
  small issue cost and may run ahead;
* :class:`Reduction` instructions — parallel work whose *result* the
  front-end must wait for (e.g. a global sum), stalling the front-end;
* :class:`Transfer` instructions — data movement between the machines,
  expressed as ``count`` messages of ``size`` words in one direction.

Trace generators (:mod:`repro.traces.sor`, :mod:`repro.traces.gauss`,
:mod:`repro.traces.synthetic`) build streams whose serial/parallel/
communication structure matches the paper's CM-Fortran benchmarks; the
platform simulators execute them, and :mod:`repro.traces.analysis`
derives the model's dedicated-mode inputs (``dcomp``, ``dserial``,
``didle``, communication patterns) from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from ..core.datasets import CommPattern, DataSet
from ..errors import WorkloadError

__all__ = [
    "Serial",
    "Parallel",
    "Reduction",
    "Transfer",
    "Instruction",
    "Trace",
]


@dataclass(frozen=True)
class Serial:
    """``work`` seconds of dedicated front-end CPU time."""

    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError(f"serial work must be >= 0, got {self.work!r}")


@dataclass(frozen=True)
class Parallel:
    """``work`` seconds of back-end execution, issued asynchronously."""

    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError(f"parallel work must be >= 0, got {self.work!r}")


@dataclass(frozen=True)
class Reduction:
    """Back-end work whose result the front-end blocks on."""

    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise WorkloadError(f"reduction work must be >= 0, got {self.work!r}")


@dataclass(frozen=True)
class Transfer:
    """``count`` messages of ``size`` words, front-end ↔ back-end.

    ``direction`` is ``"out"`` (to the back-end) or ``"in"``.
    """

    size: float
    count: int = 1
    direction: str = "out"

    def __post_init__(self) -> None:
        if self.size < 0:
            raise WorkloadError(f"message size must be >= 0, got {self.size!r}")
        if self.count < 0:
            raise WorkloadError(f"message count must be >= 0, got {self.count!r}")
        if self.direction not in ("out", "in"):
            raise WorkloadError(f"direction must be 'out' or 'in', got {self.direction!r}")


Instruction = Union[Serial, Parallel, Reduction, Transfer]


class Trace:
    """An ordered instruction stream with summary accessors."""

    def __init__(self, instructions: Iterable[Instruction], name: str = "trace") -> None:
        self.instructions: tuple[Instruction, ...] = tuple(instructions)
        self.name = name
        for ins in self.instructions:
            if not isinstance(ins, (Serial, Parallel, Reduction, Transfer)):
                raise WorkloadError(f"not an instruction: {ins!r}")

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __add__(self, other: "Trace") -> "Trace":
        if not isinstance(other, Trace):
            return NotImplemented
        return Trace(self.instructions + other.instructions, name=self.name)

    # -- static summaries (dedicated-mode model inputs) ------------------------

    @property
    def total_serial(self) -> float:
        """Total front-end serial work in the stream (seconds)."""
        return sum(i.work for i in self.instructions if isinstance(i, Serial))

    @property
    def total_parallel(self) -> float:
        """Total back-end work (Parallel + Reduction) in the stream."""
        return sum(
            i.work for i in self.instructions if isinstance(i, (Parallel, Reduction))
        )

    @property
    def parallel_count(self) -> int:
        """Number of instructions dispatched to the back-end."""
        return sum(1 for i in self.instructions if isinstance(i, (Parallel, Reduction)))

    def comm_pattern(self) -> CommPattern:
        """Aggregate the stream's transfers into a :class:`CommPattern`.

        Adjacent same-size transfers in the same direction merge into a
        single data set (they are one "group of same-sized messages" in
        the paper's vocabulary).
        """
        out: list[DataSet] = []
        inward: list[DataSet] = []
        for ins in self.instructions:
            if not isinstance(ins, Transfer) or ins.count == 0:
                continue
            bucket = out if ins.direction == "out" else inward
            if bucket and bucket[-1].size == ins.size:
                bucket[-1] = DataSet(count=bucket[-1].count + ins.count, size=ins.size)
            else:
                bucket.append(DataSet(count=ins.count, size=ins.size))
        return CommPattern(to_backend=tuple(out), to_frontend=tuple(inward))

    def scaled(self, serial: float = 1.0, parallel: float = 1.0) -> "Trace":
        """A copy with serial/back-end work scaled by the given factors.

        Useful for sensitivity studies (how does the crossover move as
        the serial fraction changes?).
        """
        if serial < 0 or parallel < 0:
            raise WorkloadError("scale factors must be >= 0")
        scaled: list[Instruction] = []
        for ins in self.instructions:
            if isinstance(ins, Serial):
                scaled.append(Serial(ins.work * serial))
            elif isinstance(ins, Parallel):
                scaled.append(Parallel(ins.work * parallel))
            elif isinstance(ins, Reduction):
                scaled.append(Reduction(ins.work * parallel))
            else:
                scaled.append(ins)
        return Trace(scaled, name=f"{self.name}-scaled")
