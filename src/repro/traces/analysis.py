"""Dedicated-mode measurement of traces (the model's inputs).

The paper assumes "computation times have already been calculated for a
dedicated environment". This module performs that calculation for a
trace: it runs the trace on a *fresh, otherwise idle* simulated
Sun/CM2 and extracts the §3.1.2 quantities the prediction formulas
need (``dcomp_cm2``, ``didle_cm2``, ``dserial_cm2``), packaged as a
:class:`~repro.core.prediction.BackendTaskCosts`.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..core.prediction import BackendTaskCosts
from ..sim.engine import Simulator
from ..sim.monitors import Timeline
from .instructions import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (platforms import traces)
    from ..platforms.specs import SunCM2Spec
    from ..platforms.suncm2 import TraceRunResult

__all__ = ["DedicatedMeasurement", "measure_dedicated_cm2"]


@dataclass(frozen=True)
class DedicatedMeasurement:
    """A dedicated-mode run's raw result and derived model inputs."""

    run: "TraceRunResult"
    costs: BackendTaskCosts

    @property
    def elapsed(self) -> float:
        """Dedicated elapsed time of the trace."""
        return self.run.elapsed


def measure_dedicated_cm2(
    trace: Trace,
    spec: "SunCM2Spec",
    timeline: Timeline | None = None,
) -> DedicatedMeasurement:
    """Run *trace* on an idle Sun/CM2 and derive its model inputs.

    The mapping from measurement to model parameters follows §3.1.2:

    * ``dcomp_cm2``  ← CM2 busy time,
    * ``didle_cm2``  ← elapsed − dcomp (so that the dedicated branch of
      the ``max`` formula reproduces the dedicated elapsed exactly),
    * ``dserial_cm2`` ← front-end CPU service consumed by the task's
      serial stream (serial work + issue + result pickup).
    """
    from ..platforms.suncm2 import SunCM2Platform

    sim = Simulator()
    platform = SunCM2Platform(sim, spec=spec)
    proc = sim.process(
        platform.run_trace(trace, tag="dedicated", timeline=timeline),
        name="dedicated-measure",
    )
    run: "TraceRunResult" = sim.run_until(proc)
    costs = BackendTaskCosts(
        dcomp=run.cm2_busy,
        didle=run.cm2_idle,
        dserial=run.sun_serial,
    )
    return DedicatedMeasurement(run=run, costs=costs)
