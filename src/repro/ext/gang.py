"""Gang scheduling on time-shared back-end nodes (§3.2 / §4).

The paper: *"contention for CPU in each node may occur if the nodes
are time-shared and gang-scheduling [7] is implemented. These effects
can be included in T_p."*

Gang scheduling switches an entire partition between applications at a
coarse quantum: all of an application's processes run together, so its
internal communication never waits for a descheduled peer, but it only
receives ``1/g`` of the wall clock when ``g`` gangs share the
partition. Two pieces here:

* :class:`GangScheduler` — a simulated gang-scheduled partition: jobs
  submit node-seconds of work; the partition rotates between resident
  gangs with a whole-partition context-switch cost.
* :func:`gang_slowdown` — the analytical T_p adjustment: a gang sharing
  a partition with ``g − 1`` others runs ``g (1 + cs/q)`` times slower
  than dedicated, the multiplier to fold into ``T_p`` before applying
  Equation (1).
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import ModelError
from ..sim.engine import Event, Simulator
from ..sim.cpu import TimeSharedCPU
from ..units import check_nonnegative, check_positive

__all__ = ["GangScheduler", "gang_slowdown"]


def gang_slowdown(gangs: int, quantum: float = 0.1, switch_cost: float = 0.0) -> float:
    """T_p multiplier for a partition time-shared by *gangs* gangs.

    ``gangs`` includes the application itself; with ``gangs == 1`` the
    partition is dedicated and the factor is 1. The whole-partition
    context switch inflates every quantum by ``switch_cost``.
    """
    if gangs < 1:
        raise ModelError(f"need at least the application's own gang, got {gangs!r}")
    check_positive(quantum, "quantum")
    check_nonnegative(switch_cost, "switch_cost")
    if gangs == 1:
        return 1.0
    return gangs * (1.0 + switch_cost / quantum)


class GangScheduler:
    """A gang-scheduled partition of ``nodes`` time-shared nodes.

    Implemented on top of :class:`~repro.sim.cpu.TimeSharedCPU`: the
    partition is one round-robin "CPU" whose service unit is a
    *partition-second* (all nodes for one second); each gang is one
    session tag, so the RR session machinery models whole-gang
    switches faithfully, including the context-switch cost.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: int,
        quantum: float = 0.1,
        switch_cost: float = 2e-3,
        name: str = "gang",
    ) -> None:
        if nodes < 1:
            raise ModelError(f"partition needs >= 1 node, got {nodes!r}")
        self.sim = sim
        self.nodes = nodes
        self.quantum = check_positive(quantum, "quantum")
        self._cpu = TimeSharedCPU(
            sim,
            capacity=1.0,
            discipline="rr",
            quantum=quantum,
            context_switch=check_nonnegative(switch_cost, "switch_cost"),
            name=name,
        )

    @property
    def resident_gangs(self) -> int:
        """Gangs currently resident (with unfinished work)."""
        return len({job.tag for job in self._cpu._jobs.values()})

    def run(self, gang: str, node_seconds: float) -> Generator[Event, Any, float]:
        """Run *node_seconds* of work for *gang*; returns elapsed time.

        Work is expressed in node-seconds; a perfectly parallel job of
        ``W`` node-seconds on this partition needs ``W / nodes``
        partition-seconds of service.
        """
        if node_seconds < 0:
            raise ModelError(f"work must be >= 0, got {node_seconds!r}")
        start = self.sim.now
        yield self._cpu.execute(node_seconds / self.nodes, tag=gang)
        return self.sim.now - start
