"""Multi-machine generalisation (§4: "the slowdown factors developed
for these small platforms can be used for larger heterogeneous
systems"; §1: "Generalization of these results to more than two
machines is straightforward").

:class:`HeterogeneousSystem` assembles per-machine contention state —
each machine carries its own competitor profiles and calibrated delay
tables — and produces contention-adjusted
:class:`~repro.core.scheduler.MappingProblem` instances for the
(unchanged) exhaustive mapper. The generalised Equation (1) falls out:
a task should run wherever its contention-adjusted execution time plus
the contention-adjusted transfers is smallest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.params import DelayTable, SizedDelayTable
from ..core.scheduler import ConfidentMapping, MappingProblem, best_mapping
from ..core.slowdown import paragon_comm_slowdown, paragon_comp_slowdown
from ..core.workload import ApplicationProfile
from ..errors import ModelError, ScheduleError

__all__ = ["MachineState", "HeterogeneousSystem"]


@dataclass
class MachineState:
    """One machine's contention state and calibrated tables.

    For a machine whose competitors are all CPU-bound and with no
    calibrated tables, the computation slowdown degenerates to
    ``p + 1`` — the Sun/CM2 special case.
    """

    name: str
    profiles: list[ApplicationProfile] = field(default_factory=list)
    delay_comp: DelayTable | None = None
    delay_comm: DelayTable | None = None
    delay_comm_sized: SizedDelayTable | None = None
    extrapolate: bool = True

    @property
    def p(self) -> int:
        return len(self.profiles)

    def comp_slowdown(self) -> float:
        """Computation slowdown on this machine."""
        if not self.profiles:
            return 1.0
        if self.delay_comm_sized is None:
            if any(pr.comm_fraction > 0 for pr in self.profiles):
                raise ModelError(
                    f"machine {self.name!r} has communicating competitors but no "
                    "delay_comm_sized table"
                )
            return float(self.p + 1)
        return paragon_comp_slowdown(
            self.profiles, self.delay_comm_sized, extrapolate=self.extrapolate
        )

    def comm_slowdown(self) -> float:
        """Slowdown of transfers initiated from this machine."""
        if not self.profiles:
            return 1.0
        if self.delay_comp is None or self.delay_comm is None:
            # CM2-style host-resident communication: pure CPU sharing.
            if any(pr.comm_fraction > 0 for pr in self.profiles):
                raise ModelError(
                    f"machine {self.name!r} has communicating competitors but no "
                    "delay_comp/delay_comm tables"
                )
            return float(self.p + 1)
        return paragon_comm_slowdown(
            self.profiles, self.delay_comp, self.delay_comm, extrapolate=self.extrapolate
        )


class HeterogeneousSystem:
    """A set of machines with per-machine contention, plus link costs.

    Parameters
    ----------
    machines:
        The machine states, one per machine.
    dedicated_comm:
        ``{(src, dst): seconds}`` dedicated transfer costs for the
        application chain's data between machine pairs.
    """

    def __init__(
        self,
        machines: Sequence[MachineState],
        dedicated_comm: Mapping[tuple[str, str], float],
    ) -> None:
        if not machines:
            raise ScheduleError("need at least one machine")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ScheduleError(f"duplicate machine names in {names}")
        self.machines: dict[str, MachineState] = {m.name: m for m in machines}
        self.dedicated_comm = dict(dedicated_comm)

    # -- contention bookkeeping ------------------------------------------------

    def arrive(self, machine: str, profile: ApplicationProfile) -> None:
        """A competitor application starts on *machine*."""
        self._machine(machine).profiles.append(profile)

    def depart(self, machine: str, name: str) -> None:
        """A competitor application on *machine* finishes."""
        state = self._machine(machine)
        before = len(state.profiles)
        state.profiles = [p for p in state.profiles if p.name != name]
        if len(state.profiles) == before:
            raise ModelError(f"no application {name!r} on machine {machine!r}")

    def _machine(self, name: str) -> MachineState:
        try:
            return self.machines[name]
        except KeyError:
            raise ScheduleError(f"unknown machine {name!r}") from None

    # -- contention-adjusted mapping ---------------------------------------------

    def adjusted_problem(
        self,
        tasks: Sequence[str],
        dedicated_exec: Mapping[str, Mapping[str, float]],
    ) -> MappingProblem:
        """Build the contention-adjusted :class:`MappingProblem`.

        Execution times are scaled by each machine's computation
        slowdown; a transfer (src → dst) is scaled by the *larger* of
        the two endpoint communication slowdowns (both endpoints must
        drive the transfer; the busier one gates it).
        """
        comp = {name: state.comp_slowdown() for name, state in self.machines.items()}
        comm = {name: state.comm_slowdown() for name, state in self.machines.items()}
        exec_time = {
            task: {m: dedicated_exec[task][m] * comp[m] for m in self.machines}
            for task in tasks
        }
        comm_time = {
            (src, dst): cost * max(comm[src], comm[dst])
            for (src, dst), cost in self.dedicated_comm.items()
        }
        return MappingProblem(
            tasks=tuple(tasks),
            machines=tuple(self.machines),
            exec_time=exec_time,
            comm_time=comm_time,
        )

    def best_mapping(
        self,
        tasks: Sequence[str],
        dedicated_exec: Mapping[str, Mapping[str, float]],
    ) -> ConfidentMapping:
        """Generalised Equation (1): the best contention-aware mapping."""
        return best_mapping(self.adjusted_problem(tasks, dedicated_exec))
