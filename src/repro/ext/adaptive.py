"""An adaptive run-time scheduler living inside the simulation.

§4: *"Since system load may vary during the execution of an
application, the slowdown factors should be recalculated when the job
mix changes, and task migration should be considered."*

:class:`AdaptiveRunner` executes a divisible front-end task on one of
several simulated machines and re-evaluates the placement between
chunks: when the current machine's observed job mix makes another
machine's predicted remaining time (plus the migration cost) smaller
by at least the hysteresis margin, the task migrates. The class is the
§4 sentence made executable — a miniature application-level scheduler
(the AppLeS direction the authors cite as reference [4]).

The machines are plain :class:`~repro.sim.cpu.TimeSharedCPU` instances
(any platform's front-end CPU qualifies); load observation uses the
CPUs' own job counts, i.e. the runner sees what a real agent could see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping, Sequence

from ..errors import ModelError
from ..sim.cpu import TimeSharedCPU
from ..sim.engine import Event, Simulator
from .migration import should_migrate

__all__ = ["AdaptiveRunner", "AdaptiveOutcome", "MigrationEvent"]


@dataclass(frozen=True)
class MigrationEvent:
    """One migration performed by the runner."""

    time: float
    source: str
    target: str
    remaining_work: float


@dataclass
class AdaptiveOutcome:
    """What happened during an adaptive run."""

    elapsed: float
    finished_on: str
    migrations: list[MigrationEvent] = field(default_factory=list)
    chunks: int = 0


class AdaptiveRunner:
    """Chunked execution with contention-aware re-placement.

    Parameters
    ----------
    sim:
        The simulator all machines live in.
    cpus:
        ``{machine name: TimeSharedCPU}`` — candidate hosts.
    speed:
        Relative dedicated speed per machine (1.0 = reference; a
        machine at 0.5 needs twice the work-time). Defaults to 1.0
        everywhere.
    migration_cost:
        Seconds of wall-clock lost when moving the task (state
        transfer); charged as a plain delay.
    chunk:
        Dedicated-work seconds executed between placement checks.
    min_gain:
        Hysteresis for :func:`repro.ext.migration.should_migrate`.
    """

    def __init__(
        self,
        sim: Simulator,
        cpus: Mapping[str, TimeSharedCPU],
        speed: Mapping[str, float] | None = None,
        migration_cost: float = 0.5,
        chunk: float = 0.25,
        min_gain: float = 0.0,
    ) -> None:
        if not cpus:
            raise ModelError("need at least one machine")
        if chunk <= 0:
            raise ModelError(f"chunk must be > 0, got {chunk!r}")
        if migration_cost < 0:
            raise ModelError(f"migration_cost must be >= 0, got {migration_cost!r}")
        self.sim = sim
        self.cpus = dict(cpus)
        self.speed = {name: 1.0 for name in cpus}
        if speed:
            for name, s in speed.items():
                if name not in self.cpus:
                    raise ModelError(f"speed given for unknown machine {name!r}")
                if s <= 0:
                    raise ModelError(f"speed must be > 0, got {s!r} for {name!r}")
                self.speed[name] = float(s)
        self.migration_cost = migration_cost
        self.chunk = chunk
        self.min_gain = min_gain

    # -- observation & prediction -------------------------------------------

    def observed_slowdown(self, machine: str) -> float:
        """Effective slowdown the task would see on *machine* right now.

        Round-robin equal sharing: with ``L`` resident jobs the task
        would get ``1/(L+1)`` of the CPU; the machine's dedicated
        speed scales on top. The runner samples between its own chunks
        (its job is not resident at that instant), so ``L`` is exactly
        the competing population.
        """
        cpu = self.cpus[machine]
        return (cpu.load + 1) / self.speed[machine]

    def best_machine(self, current: str) -> tuple[str, float]:
        """The machine with the smallest effective slowdown right now."""
        best, best_slow = current, self.observed_slowdown(current)
        for name in self.cpus:
            if name == current:
                continue
            slow = self.observed_slowdown(name)
            if slow < best_slow:
                best, best_slow = name, slow
        return best, best_slow

    # -- execution --------------------------------------------------------------

    def run(
        self, work: float, start_machine: str, tag: str = "adaptive"
    ) -> Generator[Event, Any, AdaptiveOutcome]:
        """Execute *work* dedicated-seconds adaptively; returns the outcome.

        Drive as a simulation process:
        ``outcome = yield from runner.run(8.0, "ws1")``.
        """
        if work < 0:
            raise ModelError(f"work must be >= 0, got {work!r}")
        if start_machine not in self.cpus:
            raise ModelError(f"unknown machine {start_machine!r}")
        sim = self.sim
        outcome = AdaptiveOutcome(elapsed=0.0, finished_on=start_machine)
        start = sim.now
        current = start_machine
        remaining = work
        while remaining > 1e-12:
            piece = min(self.chunk, remaining)
            # Work-time on this machine reflects its dedicated speed;
            # contention stretching happens inside the shared CPU.
            yield self.cpus[current].execute(piece / self.speed[current], tag=tag)
            remaining -= piece
            outcome.chunks += 1
            if remaining <= 1e-12:
                break
            # Let same-instant events (competitors resubmitting their
            # next burst) land before sampling the loads, otherwise a
            # completion-synchronised competitor is invisible.
            from ..sim.engine import PRIORITY_LATE

            yield sim.timeout(0, priority=PRIORITY_LATE)
            best, best_slow = self.best_machine(current)
            if best != current:
                current_slow = self.observed_slowdown(current)
                if should_migrate(
                    remaining, current_slow, best_slow, self.migration_cost, self.min_gain
                ):
                    if self.migration_cost > 0:
                        yield sim.timeout(self.migration_cost)
                    outcome.migrations.append(
                        MigrationEvent(
                            time=sim.now,
                            source=current,
                            target=best,
                            remaining_work=remaining,
                        )
                    )
                    current = best
        outcome.elapsed = sim.now - start
        outcome.finished_on = current
        return outcome
