"""Load forecasting for run-time predictions (the NWS direction).

The paper's slowdown factor is computed from the *current* job mix; its
acknowledged collaborator Rich Wolski's Network Weather Service took
the next step — forecasting resource availability from its measured
history, so predictions reflect where the load is *going*. This module
provides that layer for the reproduction's runtime tools:

* simple predictors — :class:`LastValue`, :class:`RunningMean`,
  :class:`SlidingWindowMean`, :class:`MedianWindow`,
  :class:`ExponentialSmoothing`;
* :class:`AdaptiveForecaster` — the NWS trick: run a family of
  predictors side by side, track each one's mean squared error on the
  observed series, and answer with the current best;
* :func:`forecast_series` — offline evaluation of a forecaster over a
  recorded series (one-step-ahead predictions + error summary).

Feed it slowdown samples (e.g. ``SlowdownManager.comp_slowdown()`` at
job-mix changes) or raw load observations.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Protocol, Sequence

from ..errors import ModelError

__all__ = [
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SlidingWindowMean",
    "MedianWindow",
    "ExponentialSmoothing",
    "AdaptiveForecaster",
    "forecast_series",
]


class Forecaster(Protocol):
    """One-step-ahead predictor over a scalar series."""

    def update(self, value: float) -> None:
        """Feed one observation."""

    def predict(self) -> float:
        """Forecast the next observation (NaN before any data)."""


class LastValue:
    """Predict the most recent observation (the NWS baseline)."""

    def __init__(self) -> None:
        self._last = math.nan

    def update(self, value: float) -> None:
        self._last = float(value)

    def predict(self) -> float:
        return self._last


class RunningMean:
    """Predict the mean of everything seen so far."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = math.nan

    def update(self, value: float) -> None:
        self._count += 1
        if self._count == 1:
            self._mean = float(value)
        else:
            self._mean += (float(value) - self._mean) / self._count

    def predict(self) -> float:
        return self._mean


class SlidingWindowMean:
    """Predict the mean of the last *window* observations."""

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ModelError(f"window must be >= 1, got {window!r}")
        self._values: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(float(value))

    def predict(self) -> float:
        if not self._values:
            return math.nan
        return sum(self._values) / len(self._values)


class MedianWindow:
    """Predict the median of the last *window* observations.

    Robust to the bursty outliers an OS load series carries — often the
    NWS's winner on noisy traces.
    """

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ModelError(f"window must be >= 1, got {window!r}")
        self._values: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(float(value))

    def predict(self) -> float:
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


class ExponentialSmoothing:
    """Predict an exponentially weighted moving average."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ModelError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._state = math.nan

    def update(self, value: float) -> None:
        value = float(value)
        if self._state != self._state:  # first observation
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * self._state

    def predict(self) -> float:
        return self._state


class AdaptiveForecaster:
    """Answer with whichever member predictor currently has least MSE.

    Each ``update`` first scores every member's standing prediction
    against the arriving truth, then feeds the observation to all of
    them — the postcasting scheme the Network Weather Service used.
    """

    def __init__(self, members: Sequence[Forecaster] | None = None) -> None:
        if members is None:
            members = (
                LastValue(),
                RunningMean(),
                SlidingWindowMean(8),
                MedianWindow(8),
                ExponentialSmoothing(0.3),
            )
        if not members:
            raise ModelError("need at least one member predictor")
        self.members = list(members)
        self._sse = [0.0] * len(self.members)
        self._scored = [0] * len(self.members)

    def update(self, value: float) -> None:
        value = float(value)
        for k, member in enumerate(self.members):
            prediction = member.predict()
            if prediction == prediction:  # had data
                self._sse[k] += (prediction - value) ** 2
                self._scored[k] += 1
            member.update(value)

    def best_index(self) -> int:
        """Index of the member with the lowest mean squared error."""
        scores = [
            self._sse[k] / self._scored[k] if self._scored[k] else math.inf
            for k in range(len(self.members))
        ]
        best = min(range(len(scores)), key=lambda k: (scores[k], k))
        return best

    def predict(self) -> float:
        return self.members[self.best_index()].predict()

    def mse(self) -> list[float]:
        """Per-member mean squared one-step error so far."""
        return [
            self._sse[k] / self._scored[k] if self._scored[k] else math.nan
            for k in range(len(self.members))
        ]


def forecast_series(
    values: Sequence[float], forecaster: Forecaster
) -> tuple[list[float], float]:
    """One-step-ahead predictions over *values*.

    Returns ``(predictions, rmse)`` where ``predictions[k]`` is the
    forecast of ``values[k]`` made after seeing ``values[:k]`` (NaN for
    k = 0 with fresh predictors), and the RMSE skips NaN predictions.
    """
    predictions: list[float] = []
    sse, scored = 0.0, 0
    for value in values:
        p = forecaster.predict()
        predictions.append(p)
        if p == p:
            sse += (p - float(value)) ** 2
            scored += 1
        forecaster.update(value)
    rmse = math.sqrt(sse / scored) if scored else math.nan
    return predictions, rmse
