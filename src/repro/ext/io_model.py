"""I/O extension (§4: "... as well as I/O operations").

The base model classifies a competing application's time as
*computing* or *communicating*. Real workloads also block on local
disk I/O, during which they occupy **neither** the CPU nor the link —
treating an I/O-bound competitor as CPU-bound over-predicts its
interference (the paper's intro explicitly distinguishes CPU- from
I/O-bound load characteristics).

This extension models each competitor with a three-way time split
``(comp, comm, io)`` and generalises the Poisson-binomial machinery to
the joint distribution of (number computing, number communicating);
applications in their I/O phase simply drop out of both counts. Disk
contention itself (competitors queueing on the *same* disk as the
measured task) is captured by an extra measured table ``delay_io^i``,
symmetric to the paper's ``delay_comm^i``.

Simulation support: :func:`io_bound` is the matching emulated
contention generator, using a :class:`~repro.sim.resources.FifoResource`
as the disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence

import numpy as np

from ..core.params import DelayTable
from ..errors import ModelError, WorkloadError
from ..sim.engine import Event
from ..sim.resources import FifoResource
from ..platforms.base import CoupledPlatform

__all__ = [
    "IOProfile",
    "joint_activity_distribution",
    "io_aware_comp_slowdown",
    "io_bound",
]


@dataclass(frozen=True)
class IOProfile:
    """Three-way time split of a competing application.

    Fractions must be nonnegative and sum to at most 1; the remainder
    (if any) is treated as idle time, contributing no interference.
    """

    name: str
    comp_fraction: float
    comm_fraction: float = 0.0
    io_fraction: float = 0.0
    message_size: float = 0.0

    def __post_init__(self) -> None:
        for label, f in (
            ("comp_fraction", self.comp_fraction),
            ("comm_fraction", self.comm_fraction),
            ("io_fraction", self.io_fraction),
        ):
            if not 0.0 <= f <= 1.0:
                raise ModelError(f"{label} must be in [0, 1], got {f!r}")
        if self.comp_fraction + self.comm_fraction + self.io_fraction > 1.0 + 1e-12:
            raise ModelError(
                f"fractions of {self.name!r} sum to more than 1: "
                f"{self.comp_fraction} + {self.comm_fraction} + {self.io_fraction}"
            )


def joint_activity_distribution(profiles: Sequence[IOProfile]) -> np.ndarray:
    """Joint distribution ``P[i computing, k communicating]``.

    Returns an array ``J`` of shape ``(p+1, p+1)`` with
    ``J[i, k] = P[exactly i compute AND exactly k communicate]``;
    applications in I/O (or idle) phases count in neither axis. The DP
    is the two-dimensional generalisation of the paper's ``O(p²)``
    scheme and runs in ``O(p³)``.
    """
    joint = np.zeros((1, 1))
    joint[0, 0] = 1.0
    for profile in profiles:
        p_comp = profile.comp_fraction
        p_comm = profile.comm_fraction
        p_neither = 1.0 - p_comp - p_comm  # io + idle
        n = joint.shape[0]
        new = np.zeros((n + 1, n + 1))
        new[:n, :n] += joint * p_neither
        new[1:, :n] += joint * p_comp
        new[:n, 1:] += joint * p_comm
        joint = new
    return joint


def io_aware_comp_slowdown(
    profiles: Sequence[IOProfile],
    delay_comm_for_size: DelayTable,
    delay_io: DelayTable | None = None,
    extrapolate: bool = False,
) -> float:
    """Computation slowdown with a three-way competitor model.

    .. math::

       slowdown = 1 + \\sum_i pcomp_i \\cdot i
                  + \\sum_i pcomm_i \\cdot delay_{comm}^{i}
                  + \\sum_i pio_i \\cdot delay_{io}^{i}

    where the marginals come from :func:`joint_activity_distribution`
    (``pio`` from the complementary axis when *delay_io* is given).
    Passing profiles whose ``io_fraction`` is 0 and ``delay_io=None``
    reduces exactly to the paper's §3.2.2 formula.
    """
    if not profiles:
        return 1.0
    joint = joint_activity_distribution(profiles)
    pcomp = joint.sum(axis=1)  # marginal over communicators
    pcomm = joint.sum(axis=0)
    slowdown = 1.0
    slowdown += sum(pcomp[i] * i for i in range(1, len(pcomp)))
    slowdown += sum(
        pcomm[i] * delay_comm_for_size.delay(i, extrapolate=extrapolate)
        for i in range(1, len(pcomm))
        if pcomm[i] > 0.0
    )
    if delay_io is not None:
        pio = _io_marginal(profiles)
        slowdown += sum(
            pio[i] * delay_io.delay(i, extrapolate=extrapolate)
            for i in range(1, len(pio))
            if pio[i] > 0.0
        )
    return slowdown


def _io_marginal(profiles: Sequence[IOProfile]) -> np.ndarray:
    """Poisson-binomial marginal of the number of apps doing I/O."""
    dist = np.array([1.0])
    for profile in profiles:
        f = profile.io_fraction
        p = len(dist)
        new = np.empty(p + 1)
        new[0] = dist[0] * (1.0 - f)
        if p > 1:
            new[1:p] = dist[1:] * (1.0 - f) + dist[:-1] * f
        new[p] = dist[p - 1] * f
        dist = new
    return dist


def io_bound(
    platform: CoupledPlatform,
    disk: FifoResource,
    io_service: float,
    compute_chunk: float = 0.01,
    io_fraction: float = 0.7,
    tag: str = "iohog",
) -> Generator[Event, Any, None]:
    """An endless I/O-bound application: short CPU bursts, disk waits.

    Parameters
    ----------
    platform:
        Host platform (supplies the front-end CPU).
    disk:
        The disk resource the application blocks on.
    io_service:
        Disk service time per request, seconds.
    compute_chunk:
        CPU burst between I/O requests, seconds.
    io_fraction:
        Target long-run fraction of time in I/O; the generator scales
        the number of back-to-back requests per cycle accordingly.
    """
    if io_service <= 0:
        raise WorkloadError(f"io_service must be > 0, got {io_service!r}")
    if compute_chunk <= 0:
        raise WorkloadError(f"compute_chunk must be > 0, got {compute_chunk!r}")
    if not 0.0 < io_fraction < 1.0:
        raise WorkloadError(f"io_fraction must be in (0, 1), got {io_fraction!r}")
    # Requests per cycle so that io_time/(io_time+cpu_time) ~ io_fraction.
    requests = max(1, round(io_fraction * compute_chunk / ((1 - io_fraction) * io_service)))
    while True:
        yield platform.frontend_cpu.execute(compute_chunk, tag=tag)
        for _ in range(requests):
            yield from disk.acquire(io_service)
