"""Memory-constraint extension (§4: "extending our model to include
memory constraints").

The base model assumes "the working set of each application executing
on the platform fits in memory, i.e., no delay is imposed by swapping"
(§2). This extension drops that assumption: when the resident working
sets overcommit physical memory, every memory access beyond the
machine's capacity ratio pays a paging penalty, which multiplies into
the slowdown factor.

Model
-----
Let ``W`` be the sum of the working sets of all resident applications
(the measured task plus its *p* competitors) and ``C`` the machine's
physical memory. With ``W <= C`` nothing changes. With ``W > C``, the
fraction of a working set that cannot stay resident is
``1 - C/W``; touching a non-resident page costs ``page_penalty`` times
more than a resident access. Assuming uniform access across the
working set (the classic no-locality bound), computation inflates by

.. math::

   memfactor = 1 + (1 - C/W) \\cdot (page\\_penalty - 1)

:class:`MemoryModel` computes that factor;
:func:`memory_aware_slowdown` composes it with any base slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import ModelError
from ..units import check_positive

__all__ = ["MemoryModel", "memory_aware_slowdown"]


@dataclass(frozen=True)
class MemoryModel:
    """Paging-penalty model for an overcommitted machine.

    Attributes
    ----------
    capacity:
        Physical memory available to applications (any consistent
        unit; megabytes in the examples).
    page_penalty:
        Cost ratio of a paged access to a resident access (``>= 1``).
        Mid-90s disks against DRAM put this in the hundreds-to-
        thousands; the examples use a deliberately tame value so the
        effect is visible without being a cliff.
    """

    capacity: float
    page_penalty: float = 50.0

    def __post_init__(self) -> None:
        check_positive(self.capacity, "capacity")
        if self.page_penalty < 1.0:
            raise ModelError(f"page_penalty must be >= 1, got {self.page_penalty!r}")

    def overcommit(self, working_sets: Iterable[float]) -> float:
        """Total demand / capacity (``<= 1`` means everything fits)."""
        total = 0.0
        for k, w in enumerate(working_sets):
            if w < 0:
                raise ModelError(f"working_sets[{k}] must be >= 0, got {w!r}")
            total += w
        return total / self.capacity

    def factor(self, working_sets: Iterable[float]) -> float:
        """Computation inflation factor for the given resident set.

        1.0 while everything fits; grows smoothly with overcommit.
        """
        ratio = self.overcommit(working_sets)
        if ratio <= 1.0:
            return 1.0
        nonresident = 1.0 - 1.0 / ratio
        return 1.0 + nonresident * (self.page_penalty - 1.0)


def memory_aware_slowdown(
    base_slowdown: float,
    model: MemoryModel,
    working_sets: Iterable[float],
) -> float:
    """Compose a contention slowdown with the paging factor.

    Paging delays are orthogonal to CPU/link contention (the CPU is
    surrendered during a page fault, the disk is a different resource),
    so the factors multiply — the same structure the paper uses for
    its own orthogonal terms.
    """
    if base_slowdown < 1.0:
        raise ModelError(f"base slowdown must be >= 1, got {base_slowdown!r}")
    return base_slowdown * model.factor(working_sets)
