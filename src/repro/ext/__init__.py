"""Future-work extensions the paper's §4 sketches.

Each module implements one sentence of the paper's "Summary and Future
Work": memory constraints (:mod:`.memory`), I/O operations
(:mod:`.io_model`), partially-overlapping contenders
(:mod:`.timevarying`), task migration (:mod:`.migration`), and
platforms larger than two machines (:mod:`.multimachine`).
"""

from .adaptive import AdaptiveOutcome, AdaptiveRunner, MigrationEvent
from .forecast import (
    AdaptiveForecaster,
    ExponentialSmoothing,
    Forecaster,
    LastValue,
    MedianWindow,
    RunningMean,
    SlidingWindowMean,
    forecast_series,
)
from .gang import GangScheduler, gang_slowdown
from .io_model import IOProfile, io_aware_comp_slowdown, io_bound, joint_activity_distribution
from .memory import MemoryModel, memory_aware_slowdown
from .migration import MigrationDecision, MigrationPlanner, should_migrate
from .multimachine import HeterogeneousSystem, MachineState
from .timevarying import LoadTimeline, Phase, predict_elapsed

__all__ = [
    "AdaptiveOutcome",
    "AdaptiveRunner",
    "AdaptiveForecaster",
    "ExponentialSmoothing",
    "Forecaster",
    "GangScheduler",
    "LastValue",
    "MedianWindow",
    "RunningMean",
    "SlidingWindowMean",
    "forecast_series",
    "MigrationEvent",
    "HeterogeneousSystem",
    "gang_slowdown",
    "IOProfile",
    "LoadTimeline",
    "MachineState",
    "MemoryModel",
    "MigrationDecision",
    "MigrationPlanner",
    "Phase",
    "io_aware_comp_slowdown",
    "io_bound",
    "joint_activity_distribution",
    "memory_aware_slowdown",
    "predict_elapsed",
    "should_migrate",
]
