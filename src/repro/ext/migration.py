"""Task-migration extension (§4: "task migration should be considered").

When the job mix changes mid-execution, a running task's current
placement may stop being the best one. Migration trades the one-off
cost of moving the task's state against the rate difference between
machines for the *remaining* work.

:func:`should_migrate` is the point decision; :class:`MigrationPlanner`
replays a :class:`~repro.ext.timevarying.LoadTimeline` and emits the
migration decisions a runtime system would take at each job-mix change
— including hysteresis (a minimum predicted gain) so the task does not
thrash between machines on marginal differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.workload import ApplicationProfile
from ..errors import ModelError
from .timevarying import LoadTimeline

__all__ = ["should_migrate", "MigrationDecision", "MigrationPlanner"]


def should_migrate(
    remaining_work: float,
    current_slowdown: float,
    target_slowdown: float,
    migration_cost: float,
    min_gain: float = 0.0,
) -> bool:
    """Migrate iff the predicted saving beats the cost (plus hysteresis).

    Remaining elapsed here: ``remaining_work × current_slowdown``;
    after migrating: ``migration_cost + remaining_work × target_slowdown``.
    """
    if remaining_work < 0:
        raise ModelError(f"remaining_work must be >= 0, got {remaining_work!r}")
    if current_slowdown < 1.0 or target_slowdown < 1.0:
        raise ModelError("slowdown factors must be >= 1")
    if migration_cost < 0:
        raise ModelError(f"migration_cost must be >= 0, got {migration_cost!r}")
    stay = remaining_work * current_slowdown
    move = migration_cost + remaining_work * target_slowdown
    return stay - move > min_gain


@dataclass(frozen=True)
class MigrationDecision:
    """One planner step at a job-mix change."""

    time: float
    machine: str
    migrated: bool
    remaining_work: float
    predicted_remaining_elapsed: float


class MigrationPlanner:
    """Replay a load timeline and plan migrations for one task.

    Parameters
    ----------
    machines:
        Machine names the task may run on.
    slowdown_of:
        ``slowdown_of(machine, profiles) -> factor`` — the per-machine
        contention model (competitor profiles are those *on that
        machine*; this planner treats the timeline as describing every
        machine's load via the profile's name prefix ``machine:``, or
        uniformly when no prefix is used).
    migration_cost:
        ``migration_cost(src, dst) -> seconds`` — state-transfer cost.
    min_gain:
        Hysteresis: migrate only when the predicted saving exceeds
        this many seconds.
    """

    def __init__(
        self,
        machines: Sequence[str],
        slowdown_of: Callable[[str, Sequence[ApplicationProfile]], float],
        migration_cost: Callable[[str, str], float],
        min_gain: float = 0.0,
    ) -> None:
        if not machines:
            raise ModelError("need at least one machine")
        self.machines = tuple(machines)
        self.slowdown_of = slowdown_of
        self.migration_cost = migration_cost
        self.min_gain = min_gain

    def plan(
        self,
        work: float,
        timeline: LoadTimeline,
        start_machine: str | None = None,
        start: float = 0.0,
    ) -> list[MigrationDecision]:
        """Decisions at the start and at each subsequent job-mix change.

        The returned list traces the task until its work is exhausted
        under the planned placements (progress between decisions is
        integrated at the then-current machine's slowdown).
        """
        if work < 0:
            raise ModelError(f"work must be >= 0, got {work!r}")
        current = start_machine or self._best_machine(timeline, start, work)[0]
        if current not in self.machines:
            raise ModelError(f"unknown machine {start_machine!r}")
        decisions = [self._decision(start, current, work, timeline, migrated=False)]
        remaining = work
        t = start
        for boundary in timeline.boundaries_after(start):
            # Progress up to the boundary at the current machine's rate.
            phase = timeline.phase_at(t)
            slowdown = self.slowdown_of(current, phase.profiles)
            progress = (boundary - t) / slowdown
            if progress >= remaining:
                break  # finished before the mix changed again
            remaining -= progress
            t = boundary
            best, best_slow = self._best_machine(timeline, t, remaining)
            migrated = False
            if best != current:
                cur_slow = self.slowdown_of(current, timeline.phase_at(t).profiles)
                if should_migrate(
                    remaining,
                    cur_slow,
                    best_slow,
                    self.migration_cost(current, best),
                    self.min_gain,
                ):
                    current = best
                    migrated = True
            decisions.append(self._decision(t, current, remaining, timeline, migrated))
        return decisions

    def _best_machine(
        self, timeline: LoadTimeline, t: float, remaining: float
    ) -> tuple[str, float]:
        phase = timeline.phase_at(t)
        best, best_slow = None, float("inf")
        for machine in self.machines:
            slow = self.slowdown_of(machine, phase.profiles)
            if slow < best_slow:
                best, best_slow = machine, slow
        assert best is not None
        return best, best_slow

    def _decision(
        self,
        t: float,
        machine: str,
        remaining: float,
        timeline: LoadTimeline,
        migrated: bool,
    ) -> MigrationDecision:
        slowdown = self.slowdown_of(machine, timeline.phase_at(t).profiles)
        return MigrationDecision(
            time=t,
            machine=machine,
            migrated=migrated,
            remaining_work=remaining,
            predicted_remaining_elapsed=remaining * slowdown,
        )
