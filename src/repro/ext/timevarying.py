"""Time-varying load extension (§4: "characterize the setting in which
contending applications execute for only part of the execution of a
given application").

The base model assumes "contention is experienced for the entire
duration of an application" (§2). This extension represents the
system's load as a piecewise-constant **job-mix timeline** — the
slowdown factor is recalculated whenever the job mix changes, exactly
as §2 prescribes ("recalculated every time the system status changes
or when new applications arrive") — and integrates a task's progress
through the phases.

The key primitive is :func:`predict_elapsed`: a task needing ``W``
dedicated seconds progresses at rate ``1/slowdown(phase)`` through each
phase, so its elapsed time is the solution of

.. math::

   \\int_{t_0}^{t_0 + T} \\frac{dt}{slowdown(t)} = W.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.workload import ApplicationProfile
from ..errors import ModelError

__all__ = ["Phase", "LoadTimeline", "predict_elapsed"]


@dataclass(frozen=True)
class Phase:
    """One constant-job-mix interval.

    ``start`` is the phase's begin time; it lasts until the next
    phase's start (the final phase extends to infinity).
    """

    start: float
    profiles: tuple[ApplicationProfile, ...]

    @property
    def p(self) -> int:
        """Number of competing applications during the phase."""
        return len(self.profiles)


class LoadTimeline:
    """A piecewise-constant record of which applications are running.

    Build it event-by-event with :meth:`arrive` / :meth:`depart`
    (which append phases), or all at once from explicit phases.
    """

    def __init__(self, phases: Sequence[Phase] = ()) -> None:
        self.phases: list[Phase] = list(phases)
        if not self.phases:
            self.phases = [Phase(start=0.0, profiles=())]
        for a, b in zip(self.phases, self.phases[1:]):
            if b.start <= a.start:
                raise ModelError("phase start times must strictly increase")

    @property
    def current_profiles(self) -> tuple[ApplicationProfile, ...]:
        return self.phases[-1].profiles

    def _append(self, t: float, profiles: tuple[ApplicationProfile, ...]) -> None:
        last = self.phases[-1]
        if t < last.start:
            raise ModelError(
                f"job-mix change at t={t!r} precedes the current phase ({last.start!r})"
            )
        if t == last.start:
            # Replace a same-instant phase (multiple changes at once).
            self.phases[-1] = Phase(start=t, profiles=profiles)
        else:
            self.phases.append(Phase(start=t, profiles=profiles))

    def arrive(self, t: float, profile: ApplicationProfile) -> None:
        """A new application joins the system at time *t*."""
        if any(p.name == profile.name for p in self.current_profiles):
            raise ModelError(f"application {profile.name!r} is already running")
        self._append(t, self.current_profiles + (profile,))

    def depart(self, t: float, name: str) -> None:
        """Application *name* leaves the system at time *t*."""
        remaining = tuple(p for p in self.current_profiles if p.name != name)
        if len(remaining) == len(self.current_profiles):
            raise ModelError(f"application {name!r} is not running")
        self._append(t, remaining)

    def phase_at(self, t: float) -> Phase:
        """The phase in force at time *t*."""
        if t < self.phases[0].start:
            raise ModelError(f"t={t!r} precedes the timeline start")
        starts = [ph.start for ph in self.phases]
        idx = bisect.bisect_right(starts, t) - 1
        return self.phases[idx]

    def boundaries_after(self, t: float) -> list[float]:
        """Phase-change instants strictly after *t*, in order."""
        return [ph.start for ph in self.phases if ph.start > t]


def predict_elapsed(
    work: float,
    timeline: LoadTimeline,
    slowdown_of: Callable[[Sequence[ApplicationProfile]], float],
    start: float = 0.0,
) -> float:
    """Elapsed time of a *work*-second task starting at *start*.

    Parameters
    ----------
    work:
        Dedicated-mode execution time of the task.
    timeline:
        The piecewise-constant job mix.
    slowdown_of:
        Maps a phase's competitor profiles to a slowdown factor — plug
        in :func:`repro.core.slowdown.paragon_comp_slowdown` (partially
        applied with the calibrated tables), ``cm2_slowdown`` via
        profile count, or any custom model.
    start:
        Task start time on the timeline.

    Returns
    -------
    float
        Predicted elapsed (wall-clock) time — ``>= work``, with
        equality when every traversed phase is empty.
    """
    if work < 0:
        raise ModelError(f"work must be >= 0, got {work!r}")
    remaining = work
    t = start
    boundaries = timeline.boundaries_after(start)
    for boundary in boundaries:
        if remaining <= 0:
            break
        phase = timeline.phase_at(t)
        slowdown = _checked(slowdown_of(phase.profiles))
        span = boundary - t
        progress = span / slowdown
        if progress >= remaining:
            return (t + remaining * slowdown) - start
        remaining -= progress
        t = boundary
    # Tail phase extends forever.
    phase = timeline.phase_at(t)
    slowdown = _checked(slowdown_of(phase.profiles))
    if remaining > 0 and math.isinf(slowdown):
        raise ModelError("task cannot finish: infinite slowdown in the final phase")
    return (t + remaining * slowdown) - start


def _checked(slowdown: float) -> float:
    if slowdown < 1.0:
        raise ModelError(f"slowdown_of returned {slowdown!r} (< 1)")
    return slowdown
