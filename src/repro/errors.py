"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while still letting programming errors
(``TypeError``, ``ValueError`` from misuse of third-party APIs, ...)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "CalibrationError",
    "ModelError",
    "ScheduleError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still waiting.

    Raised by :meth:`repro.sim.engine.Simulator.run` when ``until`` was not
    reached, the event queue is empty, and at least one process has not
    terminated — the classic symptom of a lost wake-up or a resource that
    was never released.
    """


class CalibrationError(ReproError):
    """Benchmark data was unsuitable for parameter estimation.

    Examples: a ping-pong sweep with fewer than two distinct message sizes
    (no regression possible), or a delay table probed at zero contention
    levels.
    """


class ModelError(ReproError):
    """Invalid inputs to one of the analytical contention models."""


class ScheduleError(ReproError):
    """The scheduler was given an infeasible or inconsistent problem."""


class WorkloadError(ReproError):
    """A workload or trace generator received invalid parameters."""
