"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while still letting programming errors
(``TypeError``, ``ValueError`` from misuse of third-party APIs, ...)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "SimulationError",
    "DeadlockError",
    "WatchdogError",
    "CalibrationError",
    "ProbeError",
    "CircuitOpenError",
    "ModelError",
    "RecoveryError",
    "ScheduleError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """Invalid value supplied at the library's public API boundary.

    Raised by the :mod:`repro.units` check helpers (and through them by
    the platform-spec and model-parameter constructors) when a numeric
    input is NaN, infinite, or outside its documented range. Subclasses
    :class:`ValueError` too, so callers that historically caught
    ``ValueError`` keep working while new code can catch the typed
    taxonomy.
    """


class SimulationError(ReproError):
    """An inconsistency was detected inside the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The simulator ran out of events while processes were still waiting.

    Raised by :meth:`repro.sim.engine.Simulator.run` when ``until`` was not
    reached, the event queue is empty, and at least one process has not
    terminated — the classic symptom of a lost wake-up or a resource that
    was never released.

    Beyond the message, the exception carries the simulator state needed
    to diagnose (or report) the stall without a debugger attached:

    Attributes
    ----------
    sim_time:
        Virtual time at which the simulation stalled.
    pending:
        Names of the still-alive non-daemon processes (possibly
        truncated; ``len(pending) <= pending_count``).
    pending_count:
        Total number of still-alive non-daemon processes.
    queue_size:
        Number of events left on the heap when the stall was detected
        (0 for a drained queue, > 0 when a virtual-time limit tripped).
    """

    def __init__(
        self,
        message: str,
        *,
        sim_time: float = 0.0,
        pending: tuple[str, ...] = (),
        pending_count: int | None = None,
        queue_size: int = 0,
    ) -> None:
        super().__init__(message)
        self.sim_time = float(sim_time)
        self.pending = tuple(pending)
        self.pending_count = len(self.pending) if pending_count is None else int(pending_count)
        self.queue_size = int(queue_size)


class WatchdogError(SimulationError):
    """A supervised run exceeded one of its watchdog budgets.

    Raised by :meth:`repro.reliability.supervise.FailureReport.raise_if_failed`
    when a wall-clock, virtual-time or event budget was exhausted.
    """


class CalibrationError(ReproError):
    """Benchmark data was unsuitable for parameter estimation.

    Examples: a ping-pong sweep with fewer than two distinct message sizes
    (no regression possible), or a delay table probed at zero contention
    levels.
    """


class ProbeError(CalibrationError):
    """A single calibration probe run failed (and may be retried).

    Distinct from :class:`CalibrationError` proper: a probe failure is a
    *transient* measurement loss (in the reproduction, injected by the
    fault plan; on a real platform, a crashed benchmark process), while
    a CalibrationError means the collected data itself is unusable.
    """


class CircuitOpenError(ProbeError):
    """A circuit breaker rejected the call without attempting it.

    Raised by :meth:`repro.reliability.breaker.CircuitBreaker.call` (and
    by :func:`repro.reliability.retry.retry_with_backoff` when given a
    breaker) once the breaker has tripped open: the protected operation
    has failed persistently and further attempts are refused until the
    recovery window elapses — or forever, when the breaker's deadline
    budget is exhausted. Subclasses :class:`ProbeError` because the
    canonical protected operation is a calibration probe, and callers
    handling probe loss should handle breaker rejection the same way:
    degrade, don't abort.
    """


class ModelError(ReproError):
    """Invalid inputs to one of the analytical contention models."""


class RecoveryError(ReproError):
    """A rebuilt fleet shard failed verification against its durable stream.

    Raised (or surfaced through
    :attr:`repro.fleet.service.FleetService.last_recovery_error`) when a
    journal replay does not reproduce the state the service accounted
    for: the replayed event count or rolling stream hash diverges from
    the live bookkeeping, or the rebuilt shard's ``state_hash`` misses
    the pre-quarantine checkpoint. The shard stays quarantined rather
    than being silently re-admitted with corrupt state.

    Attributes
    ----------
    shard_id:
        The shard whose rebuild failed verification.
    expected_events:
        Events the service accounted to the shard's stream.
    replayed_events:
        Events the verification replay actually reproduced.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_id: int,
        expected_events: int = 0,
        replayed_events: int = 0,
    ) -> None:
        super().__init__(message)
        self.shard_id = int(shard_id)
        self.expected_events = int(expected_events)
        self.replayed_events = int(replayed_events)


class ScheduleError(ReproError):
    """The scheduler was given an infeasible or inconsistent problem."""


class WorkloadError(ReproError):
    """A workload or trace generator received invalid parameters."""
