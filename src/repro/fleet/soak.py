"""Fleet soak driver: churn a service, survive a kill, prove identity.

``python -m repro.fleet.soak`` streams the deterministic
:func:`~repro.fleet.registry.synthetic_feed` through a
:class:`~repro.fleet.service.FleetService` backed by a durable
:class:`~repro.experiments.journal.EventLog`, then prints the service's
:meth:`~repro.fleet.service.FleetService.state_hash`.

Three modes compose into the recovery proof (used by both
``scripts/smoke.sh`` and ``tests/fleet/test_recovery.py``):

* plain run — feed N events, print the hash: the uninterrupted oracle;
* ``--kill-at K`` — SIGKILL *this process* (no cleanup, no atexit)
  right after event K is durably applied: the mid-stream crash;
* ``--resume`` — rebuild the service by replaying the event log, then
  continue the *same* synthetic feed from the first event the log
  never saw, to the same N: the recovered run.

Because the feed is a pure function of its seed and the log preserves
exactly the admitted prefix, the recovered run's final hash must equal
the uninterrupted oracle's **bit for bit** — any drift in replay, feed
fast-forward or the incremental probability updates shows up here.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from pathlib import Path

from ..experiments.journal import EventLog
from .registry import synthetic_feed
from .service import FleetService

__all__ = ["main", "run_soak"]


def run_soak(
    log_path: str,
    events: int,
    machines: int = 16,
    shards: int = 4,
    tenants: int = 4,
    seed: int = 7,
    kill_at: int | None = None,
    resume: bool = False,
) -> FleetService:
    """Drive one soak run; returns the service at its final state."""
    log = EventLog(log_path, resume=resume)
    service = FleetService(machines=machines, num_shards=shards, log=log)
    start = 0
    if resume:
        # Rebuild from the durable prefix: replay through the same
        # apply path, without re-logging.
        service.log = None
        for event in EventLog.replay(log_path):
            service.apply(event)
        service.log = log
        start = log.next_seq
    feed = synthetic_feed(
        seed=seed, events=events - start, machines=machines, tenants=tenants,
        start_seq=start,
    )
    for i, event in enumerate(feed, start=start):
        if not service.submit(event):
            service.pump()
            service.submit(event)
        service.pump()
        if kill_at is not None and i + 1 >= kill_at:
            # A real crash: no flush, no atexit, no goodbye.
            os.kill(os.getpid(), signal.SIGKILL)
    service.pump()
    return service


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", required=True, help="event-log path")
    parser.add_argument("--events", type=int, default=400)
    parser.add_argument("--machines", type=int, default=16)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--kill-at", type=int, default=None, help="SIGKILL self after this many events"
    )
    parser.add_argument(
        "--resume", action="store_true", help="replay the log before continuing"
    )
    parser.add_argument(
        "--state-out", default=None, help="write the final state hash to this file"
    )
    args = parser.parse_args(argv)
    service = run_soak(
        log_path=args.log,
        events=args.events,
        machines=args.machines,
        shards=args.shards,
        tenants=args.tenants,
        seed=args.seed,
        kill_at=args.kill_at,
        resume=args.resume,
    )
    digest = service.state_hash()
    counters = service.counters()
    if args.state_out:
        Path(args.state_out).write_text(digest + "\n", encoding="utf-8")
    print(digest)
    print(
        f"admitted={counters['admitted_events']} "
        f"registered={counters['registered']} "
        f"rebuilds={counters['rebuilds']}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
