"""Fleet soak driver: churn a service, survive kills, prove identity.

``python -m repro.fleet.soak`` streams the deterministic
:func:`~repro.fleet.registry.synthetic_feed` through a fleet service
backed by a durable :class:`~repro.experiments.journal.EventLog`, then
prints the service's :meth:`~repro.fleet.service.FleetService.state_hash`.

The modes compose into the recovery proofs (used by both
``scripts/smoke.sh`` and ``tests/fleet/test_recovery.py`` /
``tests/fleet/test_supervisor.py``):

* plain run — feed N events, print the hash: the uninterrupted oracle;
* ``--kill-at K`` — SIGKILL *this process* (no cleanup, no atexit)
  right after event K is durably applied: the mid-stream crash;
* ``--resume`` — rebuild the service by replaying the event log, then
  continue the *same* synthetic feed from the first event the log
  never saw, to the same N: the recovered run;
* ``--supervised`` — run shards in worker processes under the
  supervision tree (:class:`~repro.fleet.supervisor
  .SupervisedFleetService`);
* ``--kill-worker-at K`` — SIGKILL a single shard *worker* (not the
  whole process) after event K; the run must complete anyway, with
  the respawned shard bit-identical to an uninterrupted run;
* ``--chaos sigkill@A,hang@B,raise@C`` — seeded worker-fault schedule
  (targets rotate across shards). After each injected fault the driver
  waits for the quarantine to surface and *asserts* that a placement
  query against the dead shard's machines is answered — ANALYTIC, not
  an exception. The service never raising, the failover answers, and
  the final bit-identity are all checked in-process, so a passing exit
  code is the chaos proof.

Because the feed is a pure function of its seed, the log preserves
exactly the admitted prefix, and every shard's state is a pure
function of its slice of the stream, the final hash of any recovered
or supervised run must equal the uninterrupted oracle's **bit for
bit** — any drift in replay, feed fast-forward, worker failover, or
the incremental probability updates shows up here.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from pathlib import Path

from ..experiments.journal import EventLog
from ..parallel.containment import FailurePolicy
from ..reliability.degrade import Confidence
from .admission import AdmissionController, TenantQuota
from .registry import synthetic_feed
from .service import FleetService, PlacementQuery
from .shard import ShardPolicy
from .supervisor import SupervisedFleetService, SupervisorPolicy

__all__ = ["main", "run_soak", "parse_chaos"]

#: Worker-fault kinds the ``--chaos`` schedule understands.
CHAOS_KINDS = ("sigkill", "exit", "hang", "raise")


def parse_chaos(spec: str, shards: int) -> list[tuple[int, str, int]]:
    """``"sigkill@120,hang@200"`` → sorted ``[(at, kind, shard), ...]``.

    Target shards rotate round-robin over the schedule order, so a
    three-fault spec exercises three different workers.
    """
    out: list[tuple[int, str, int]] = []
    index = 0
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, at = part.partition("@")
        kind = kind.strip()
        if not sep or kind not in CHAOS_KINDS:
            raise ValueError(
                f"chaos entry must be kind@event with kind in {CHAOS_KINDS}, "
                f"got {part!r}"
            )
        out.append((int(at), kind, index % shards))
        index += 1
    out.sort()
    return out


def _probe(service: SupervisedFleetService, sid: int) -> None:
    """Assert a query against quarantined shard *sid* answers — ANALYTIC."""
    candidates = tuple(range(sid, service.machines, service.num_shards))
    answer = service.query(
        "chaos-probe", PlacementQuery(dcomp_frontend=1.0, candidates=candidates)
    )
    if answer.confidence != Confidence.ANALYTIC:
        raise AssertionError(
            f"query against quarantined shard {sid} came back "
            f"{answer.confidence!r}, expected ANALYTIC"
        )


def run_soak(
    log_path: str,
    events: int,
    machines: int = 16,
    shards: int = 4,
    tenants: int = 4,
    seed: int = 7,
    kill_at: int | None = None,
    resume: bool = False,
    supervised: bool = False,
    chaos: list[tuple[int, str, int]] | None = None,
    depart_probability: float = 0.35,
    sync: bool = True,
    batch_size: int = 1,
) -> FleetService:
    """Drive one soak run; returns the service at its final state."""
    log = EventLog(log_path, resume=resume, sync=sync)
    # Soak populations may dwarf the default per-tenant cap; the soak
    # measures recovery, not quota enforcement.
    admission = AdmissionController(default=TenantQuota(max_apps=10**9))
    if supervised:
        service: FleetService = SupervisedFleetService(
            machines=machines,
            num_shards=shards,
            admission=admission,
            policy=ShardPolicy(failure_threshold=1, recovery_time=0.2),
            log=log,
            supervisor=SupervisorPolicy(
                heartbeat_interval=1.0,
                heartbeat_timeout=4.0,
                batch_size=batch_size,
                containment=FailurePolicy(deadline=2.0),
            ),
        )
    else:
        service = FleetService(
            machines=machines, num_shards=shards, admission=admission, log=log
        )
    start = 0
    if resume:
        # Rebuild from the durable prefix: replay through the same
        # apply path, without re-logging.
        service.log = None
        for event in EventLog.replay(log_path):
            service.apply(event)
        service.log = log
        start = log.next_seq
    schedule = list(chaos or [])
    probes_pending: set[int] = set()
    probes_fired = 0
    feed = synthetic_feed(
        seed=seed,
        events=events - start,
        machines=machines,
        tenants=tenants,
        depart_probability=depart_probability,
        start_seq=start,
    )
    for i, event in enumerate(feed, start=start):
        if not service.submit(event):
            service.pump()
            service.submit(event)
        service.pump()
        while schedule and i + 1 >= schedule[0][0]:
            _, kind, sid = schedule.pop(0)
            assert isinstance(service, SupervisedFleetService)
            if kind == "sigkill":
                pid = service.worker_pid(sid)
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
            else:
                service.inject_fault(sid, kind, after=1)
            probes_pending.add(sid)
        if probes_pending and isinstance(service, SupervisedFleetService):
            for sid in sorted(probes_pending & service.quarantined):
                _probe(service, sid)
                probes_pending.discard(sid)
                probes_fired += 1
        if kill_at is not None and i + 1 >= kill_at:
            # A real crash: no flush, no atexit, no goodbye.
            os.kill(os.getpid(), signal.SIGKILL)
    service.pump()
    if isinstance(service, SupervisedFleetService):
        # Late faults may surface after the feed ends: keep supervising
        # until every pending quarantine has been probed, then demand
        # full recovery before the caller reads the state hash.
        deadline = time.monotonic() + 60.0
        while probes_pending and time.monotonic() < deadline:
            service.tick(force=True)
            for sid in sorted(probes_pending & service.quarantined):
                _probe(service, sid)
                probes_pending.discard(sid)
                probes_fired += 1
            time.sleep(0.01)
        if probes_pending:
            raise AssertionError(
                f"faults against shards {sorted(probes_pending)} never "
                f"surfaced as quarantines"
            )
        if not service.await_recovery(timeout=120.0):
            states = [service.worker_state(s) for s in range(service.num_shards)]
            raise AssertionError(f"fleet never fully recovered: {states}")
        expected = len(chaos or [])
        if probes_fired < expected:
            raise AssertionError(
                f"only {probes_fired} of {expected} chaos probes fired"
            )
    return service


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", required=True, help="event-log path")
    parser.add_argument("--events", type=int, default=400)
    parser.add_argument("--machines", type=int, default=16)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--kill-at", type=int, default=None, help="SIGKILL self after this many events"
    )
    parser.add_argument(
        "--resume", action="store_true", help="replay the log before continuing"
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="run shards in worker processes under the supervision tree",
    )
    parser.add_argument(
        "--kill-worker-at",
        type=int,
        default=None,
        help="SIGKILL one shard worker after this many events (implies --supervised)",
    )
    parser.add_argument(
        "--kill-shard",
        type=int,
        default=1,
        help="shard whose worker --kill-worker-at targets",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        help="worker-fault schedule, e.g. sigkill@100,hang@200,raise@300 "
        "(implies --supervised; targets rotate across shards)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=int(os.environ.get("REPRO_FLEET_BATCH", "1")),
        help="events coalesced into one supervised-worker apply frame "
        "(env REPRO_FLEET_BATCH; 1 = one message per event)",
    )
    parser.add_argument(
        "--depart-prob",
        type=float,
        default=0.35,
        help="synthetic-feed departure probability (0 grows a pure population)",
    )
    parser.add_argument(
        "--no-sync",
        action="store_true",
        help="skip per-append fsync on the event log (worker-kill chaos "
        "does not need it: the logging process survives)",
    )
    parser.add_argument(
        "--state-out", default=None, help="write the final state hash to this file"
    )
    args = parser.parse_args(argv)
    supervised = args.supervised or args.chaos is not None or args.kill_worker_at is not None
    chaos = parse_chaos(args.chaos, args.shards) if args.chaos else []
    if args.kill_worker_at is not None:
        chaos.append((args.kill_worker_at, "sigkill", args.kill_shard % args.shards))
        chaos.sort()
    service = run_soak(
        log_path=args.log,
        events=args.events,
        machines=args.machines,
        shards=args.shards,
        tenants=args.tenants,
        seed=args.seed,
        kill_at=args.kill_at,
        resume=args.resume,
        supervised=supervised,
        chaos=chaos,
        depart_probability=args.depart_prob,
        sync=not args.no_sync,
        batch_size=args.batch_size,
    )
    digest = service.state_hash()
    counters = service.counters()
    if args.state_out:
        Path(args.state_out).write_text(digest + "\n", encoding="utf-8")
    print(digest)
    line = (
        f"admitted={counters['admitted_events']} "
        f"registered={counters['registered']} "
        f"rebuilds={counters['rebuilds']}"
    )
    if supervised:
        line += (
            f" respawns={counters['respawns']}"
            f" worker_failures={counters['worker_failures']}"
            f" heartbeats_missed={counters['heartbeats_missed']}"
            f" replay_events={counters['replay_events']}"
            f" failover_answers={counters['failover_answers']}"
            f" recovery_mismatches={counters['recovery_mismatches']}"
        )
    print(line, file=sys.stderr)
    service.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
