"""Fleet-scale contention service (see :mod:`repro.fleet.service`).

The per-call contention model (:mod:`repro.core`) promoted to a
long-running, machine-sharded, multi-tenant placement service with
admission control, load shedding, and journal-backed shard recovery.
:mod:`repro.fleet.supervisor` runs each shard in its own worker
process under a supervision tree (heartbeats, failover, verified
journal-backed respawn).
"""

from .admission import AdmissionController, BoundedQueue, TenantQuota, TokenBucket
from .registry import AppRecord, FleetRegistry, synthetic_feed
from .service import FleetService, PlacementAnswer, PlacementQuery
from .shard import (
    ArrayShard,
    ReplayCheckpoint,
    ReplayResult,
    Shard,
    ShardPolicy,
    replay_stream,
    stream_step,
)
from .supervisor import SupervisedFleetService, SupervisorPolicy
from .worker import WorkerHandle, worker_main

__all__ = [
    "AdmissionController",
    "AppRecord",
    "ArrayShard",
    "BoundedQueue",
    "FleetRegistry",
    "FleetService",
    "PlacementAnswer",
    "PlacementQuery",
    "ReplayCheckpoint",
    "ReplayResult",
    "Shard",
    "ShardPolicy",
    "SupervisedFleetService",
    "SupervisorPolicy",
    "TenantQuota",
    "TokenBucket",
    "WorkerHandle",
    "replay_stream",
    "stream_step",
    "synthetic_feed",
    "worker_main",
]
