"""Fleet-scale contention service (see :mod:`repro.fleet.service`).

The per-call contention model (:mod:`repro.core`) promoted to a
long-running, machine-sharded, multi-tenant placement service with
admission control, load shedding, and journal-backed shard recovery.
"""

from .admission import AdmissionController, BoundedQueue, TenantQuota, TokenBucket
from .registry import AppRecord, FleetRegistry, synthetic_feed
from .service import FleetService, PlacementAnswer, PlacementQuery
from .shard import Shard, ShardPolicy

__all__ = [
    "AdmissionController",
    "AppRecord",
    "BoundedQueue",
    "FleetRegistry",
    "FleetService",
    "PlacementAnswer",
    "PlacementQuery",
    "Shard",
    "ShardPolicy",
    "TenantQuota",
    "TokenBucket",
    "synthetic_feed",
]
