"""The shard worker: one :class:`~repro.fleet.shard.Shard` per process.

:func:`worker_main` is the child-process request loop behind the
``ShardWorker`` protocol. It owns exactly one shard, receives the
shard's slice of the event feed over a pipe (the supervisor partitions
by ``shard_of``), and answers every request in order:

==============================  ===========================================
request                         response
==============================  ===========================================
``("apply", [events])``         ``("ok", n_applied)`` or ``("err", message)``
``("slowdowns", [machines])``   ``("slowdowns", {m: (comp, comm, conf)})``
``("ping", want_hash)``         ``("pong", applied, state_hash_or_None)``
``("hash",)``                   ``("hash", digest)``
``("replay", lo, hi, cp)``      ``("replayed", count, chain_hex, cp_ok, why)``
``("inject", kind, after)``     ``("ok",)``
``("shutdown",)``               ``("ok",)`` then the process exits
==============================  ===========================================

Responses come back strictly FIFO — a pipe is an ordered byte stream
and the loop answers one request before reading the next — so the
parent matches acknowledgements to requests positionally (its pending
:class:`~repro.fleet.admission.BoundedQueue` per worker).

``("apply", [events])`` carries a bounded *frame* of validated events
(the supervisor coalesces up to ``SupervisorPolicy.batch_size`` per
shard) and is acknowledged once per frame; a :class:`~repro.errors
.ModelError` mid-frame aborts the frame with ``("err", message)`` and
the supervisor kills and replays the worker, so partially applied
frames never survive. Stream accounting, heartbeat checkpoints and
replay verification all live on frame boundaries.

``("inject", kind, after)`` is the chaos hook: after *after* more
applied events — counted through frame payloads, not messages — the
worker SIGKILLs itself mid-handler (``exit``), wedges without
answering (``hang``), or lets an exception escape the loop
(``raise``). The supervision tree must treat all three the same way —
quarantine, respawn, replay — which is exactly what the chaos soak
asserts.

``("replay", from_seq, upto_seq, checkpoint)`` rebuilds the shard from
the durable :class:`~repro.experiments.journal.EventLog`: the worker
replays every owned event with ``from_seq <= seq < upto_seq`` through
:func:`~repro.fleet.shard.replay_stream` and reports the *cumulative*
replayed count, the rolling stream chain, and whether the
pre-quarantine checkpoint was reproduced. The chain and count persist
across requests, so the supervisor can catch a respawned worker up
incrementally — a first full replay, then shrinking delta rounds over
whatever was logged while the previous round ran — and verify each
round against its own cumulative accounting. Bit-identical or
quarantined.
"""

from __future__ import annotations

import os
import select
import struct
import time
import traceback
from dataclasses import dataclass
from multiprocessing.reduction import ForkingPickler
from typing import Any, Callable, Iterable, Sequence

from ..errors import ModelError
from .admission import BoundedQueue
from .shard import ArrayShard, ReplayCheckpoint, replay_stream

__all__ = ["worker_main", "WorkerHandle", "WorkerUnavailable", "FAULT_KINDS"]

#: Chaos-injection kinds ``("inject", kind, after)`` understands.
FAULT_KINDS = ("exit", "hang", "raise")

#: Exit status for an injected crash — distinguishable from SIGKILL's
#: 137 in the supervisor's post-mortem, identical in its handling.
_CRASH_STATUS = 113


class WorkerUnavailable(Exception):
    """The worker's pipe is gone (process died or closed its end)."""


def worker_main(
    conn: Any,
    shard_id: int,
    machine_ids: Sequence[int],
    tables: tuple[Any, Any, Any],
    log_path: str | None,
) -> None:
    """Child-process entry point: serve one shard until shutdown/EOF."""
    shard = ArrayShard(shard_id, machine_ids, *tables)
    chain = b""  # rolling stream hash, cumulative across replay rounds
    fault: dict[str, Any] | None = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; nothing left to serve
            op = msg[0]
            if op == "apply":
                failure: str | None = None
                applied = 0
                for event in msg[1]:
                    if fault is not None:
                        fault["after"] -= 1
                        if fault["after"] <= 0:
                            kind = fault["kind"]
                            fault = None
                            if kind == "exit":
                                os._exit(_CRASH_STATUS)
                            if kind == "hang":
                                time.sleep(3600.0)
                            if kind == "raise":
                                raise RuntimeError(
                                    "injected fault: exception inside the apply handler"
                                )
                    try:
                        shard.apply(event)
                    except ModelError as exc:
                        failure = str(exc)
                        break
                    applied += 1
                if failure is not None:
                    conn.send(("err", failure))
                else:
                    conn.send(("ok", applied))
            elif op == "slowdowns":
                answer = {}
                for machine in msg[1]:
                    comp, comm, conf = shard.slowdowns(machine)
                    answer[machine] = (comp, comm, int(conf))
                conn.send(("slowdowns", answer))
            elif op == "ping":
                digest = shard.state_hash() if msg[1] else None
                conn.send(("pong", shard.applied, digest))
            elif op == "hash":
                conn.send(("hash", shard.state_hash()))
            elif op == "replay":
                from_seq, upto_seq, raw_checkpoint = msg[1], msg[2], msg[3]
                checkpoint = (
                    ReplayCheckpoint(*raw_checkpoint)
                    if raw_checkpoint is not None
                    else None
                )
                from ..experiments.journal import EventLog

                events: Iterable[Any] = (
                    event
                    for event in EventLog.replay(log_path)
                    if from_seq <= event.get("seq", 0) < upto_seq
                )
                try:
                    result = replay_stream(
                        shard,
                        events,
                        checkpoint=checkpoint,
                        chain=chain,
                        already=shard.applied,
                    )
                except ModelError as exc:
                    conn.send(("replayed", -1, "", False, f"replay raised: {exc}"))
                else:
                    chain = result.chain
                    conn.send(
                        (
                            "replayed",
                            result.count,
                            result.chain.hex(),
                            result.checkpoint_ok,
                            result.detail,
                        )
                    )
            elif op == "inject":
                fault = {"kind": str(msg[1]), "after": int(msg[2])}
                conn.send(("ok",))
            elif op == "shutdown":
                conn.send(("ok",))
                return
            else:
                conn.send(("err", f"unknown worker op {op!r}"))
    except Exception:  # pragma: no cover - crash path exercised via chaos tests
        traceback.print_exc()
        os._exit(os.EX_SOFTWARE)


@dataclass
class PendingRequest:
    """One in-flight request awaiting its FIFO acknowledgement."""

    kind: str
    sent_at: float
    deadline: float | None
    meta: Any = None


class WorkerHandle:
    """Parent-side proxy for one shard worker process.

    Owns the process, the parent end of the pipe, and the FIFO of
    in-flight requests (a :class:`~repro.fleet.admission.BoundedQueue`,
    so per-worker depth is bounded and its ``full`` state is the
    cross-process backpressure signal). The handle is deliberately
    dumb: all supervision policy — deadlines, heartbeats, respawn,
    replay verification — lives in
    :class:`~repro.fleet.supervisor.SupervisedFleetService`.

    ``state`` is the worker lifecycle state machine::

        spawn ──► "replaying" ──verified──► "live"
          ▲            │                      │
          │            └──────── failure ─────┤
          └──breaker allows──── "dead" ◄──────┘

    (A first-boot worker starts "live": an empty shard trivially
    matches an empty stream.)
    """

    LIVE = "live"
    REPLAYING = "replaying"
    DEAD = "dead"

    def __init__(
        self,
        ctx: Any,
        shard_id: int,
        machine_ids: Sequence[int],
        tables: tuple[Any, Any, Any],
        log_path: str | None,
        max_inflight: int,
        now: float,
    ) -> None:
        self.shard_id = int(shard_id)
        self.pending: BoundedQueue = BoundedQueue(max_inflight)
        self.state = self.LIVE
        self.last_ping = now
        #: Cumulative events the worker has replayed across rounds
        #: (mirrors its reported counts; the supervisor charges deltas).
        self.replayed = 0
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, shard_id, tuple(machine_ids), tables, log_path),
            name=f"fleet-worker-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def _send_with_deadline(self, msg: tuple, timeout: float) -> None:
        """``conn.send`` that cannot block forever on a full OS pipe.

        A plain ``Connection.send`` to a worker that has stopped
        reading (wedged in a handler, chaos ``hang``) blocks in
        ``write(2)`` once the kernel pipe buffer fills — with batched
        apply frames a handful of frames is enough — and then no
        supervision tick ever runs again to enforce the very deadline
        that would have failed the worker. So the pipe is written
        non-blocking under a wall-clock budget; a stall past *timeout*
        raises :class:`WorkerUnavailable` (the stream may have a
        partial message in it, so the connection is unusable and the
        caller must fail the worker — which the journal replay makes
        safe).
        """
        payload = bytes(ForkingPickler.dumps(msg))
        # The exact byte framing of Connection._send_bytes.
        if len(payload) > 0x7FFFFFFF:  # pragma: no cover - frames are bounded
            data = struct.pack("!i", -1) + struct.pack("!Q", len(payload)) + payload
        else:
            data = struct.pack("!i", len(payload)) + payload
        buf = memoryview(data)
        try:
            fd = self.conn.fileno()
        except (OSError, ValueError) as exc:
            raise WorkerUnavailable(str(exc)) from exc
        end = time.monotonic() + timeout
        os.set_blocking(fd, False)
        try:
            while buf:
                try:
                    written = os.write(fd, buf)
                except BlockingIOError:
                    written = 0
                except OSError as exc:
                    raise WorkerUnavailable(str(exc)) from exc
                if written:
                    buf = buf[written:]
                    continue
                remaining = end - time.monotonic()
                if remaining <= 0:
                    raise WorkerUnavailable(
                        f"send stalled {timeout:.1f}s: worker not draining its pipe"
                    )
                select.select([], [fd], [], min(remaining, 0.05))
        finally:
            try:
                os.set_blocking(fd, True)
            except OSError:  # pragma: no cover - conn torn down mid-send
                pass

    def request(
        self,
        msg: tuple,
        kind: str,
        deadline: float | None,
        now: float,
        meta: Any = None,
    ) -> bool:
        """Send *msg*; False means the in-flight window is full.

        Raises :class:`WorkerUnavailable` when the pipe is broken or
        the send stalls past the request deadline — the caller routes
        that into the failure path.
        """
        if self.pending.full:
            return False
        self._send_with_deadline(msg, deadline if deadline is not None else 60.0)
        self.pending.offer(PendingRequest(kind, now, deadline, meta))
        return True

    def poll_ack(self) -> tuple[PendingRequest, tuple] | None:
        """Receive one acknowledgement if ready; None when none pending.

        Raises :class:`WorkerUnavailable` on a broken/EOF pipe, and on
        a response with no matching request (protocol desync).
        """
        if not len(self.pending):
            return None
        try:
            if not self.conn.poll(0):
                return None
            response = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerUnavailable(str(exc)) from exc
        entry = self.pending.take()
        return entry, response

    def wait_ack(self, timeout: float, clock: Callable[[], float]) -> tuple | None:
        """Block up to *timeout* seconds for the next acknowledgement."""
        deadline = clock() + timeout
        while True:
            remaining = deadline - clock()
            if remaining <= 0:
                return None
            try:
                if self.conn.poll(min(remaining, 0.05)):
                    ack = self.poll_ack()
                    if ack is not None:
                        return ack
            except (EOFError, OSError) as exc:
                raise WorkerUnavailable(str(exc)) from exc

    def oldest(self) -> PendingRequest | None:
        """The in-flight request whose acknowledgement is due next."""
        return self.pending.peek()

    def kill(self) -> None:
        """Forcibly terminate the process and close the pipe."""
        try:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover - teardown races
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def shutdown(self, timeout: float = 2.0) -> None:
        """Ask the worker to exit cleanly; escalate to kill."""
        try:
            self._send_with_deadline(("shutdown",), timeout)
        except WorkerUnavailable:
            pass
        self.process.join(timeout=timeout)
        self.kill()
