"""A fleet shard: live contention state for a slice of the machines.

Each shard owns one :class:`~repro.core.runtime.SlowdownManager` per
machine in its slice and keeps it current by consuming the service's
arrive/depart event stream. Queries do not touch the managers directly:
the shard memoizes each machine's tagged ``(comp, comm, confidence)``
triple and invalidates it per machine on writes, because the tagged
slowdown queries are O(p) Python loops over the delay tables while an
arrival is a cheap O(p) NumPy update — a fleet that recomputed every
machine's slowdowns on every event would melt long before the 10k
queries/sec target.

:meth:`Shard.state_hash` fingerprints the full model state — every
machine's registered profiles and both overlap-distribution arrays,
byte for byte. Replaying the same event prefix through a fresh shard
runs the identical floating-point operations in the identical order, so
the hash is the recovery test's bit-identity oracle
(:mod:`repro.fleet.service` rebuilds quarantined shards this way).

:class:`ShardPolicy` is the containment contract, mirroring
:class:`~repro.parallel.containment.FailurePolicy`: how slow an event
application may be before it counts as a failure (deadline blowout),
how many failures quarantine the shard, and the recovery/budget
parameters of the :class:`~repro.reliability.breaker.CircuitBreaker`
that gates re-admission after a rebuild.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.params import DelayTable, SizedDelayTable
from ..core.runtime import SlowdownManager
from ..core.workload import ApplicationProfile
from ..errors import ModelError
from ..reliability.degrade import Confidence

__all__ = [
    "Shard",
    "ShardPolicy",
    "ReplayCheckpoint",
    "ReplayResult",
    "STREAM_FIELDS",
    "replay_stream",
    "stream_step",
]

#: Event fields that determine shard state. Sequence stamps (``seq``,
#: ``v``) are deliberately excluded so the live copy of an event, its
#: journal round-trip, and its replayed copy all chain identically.
STREAM_FIELDS = ("op", "app", "tenant", "machine", "comm_fraction", "message_size")


def stream_step(chain: bytes, event: Mapping) -> bytes:
    """Advance a rolling stream hash by one event.

    The chain is a blake2b link over the previous chain value and the
    canonical JSON of the event's :data:`STREAM_FIELDS`. Two consumers
    that saw the same events in the same order hold the same chain —
    the cheap, incremental cousin of :meth:`Shard.state_hash` used to
    verify journal replays cover exactly the accounted stream.
    """
    h = hashlib.blake2b(chain, digest_size=16)
    payload = {field: event[field] for field in STREAM_FIELDS if field in event}
    h.update(json.dumps(payload, sort_keys=True, separators=(",", ":")).encode())
    return h.digest()


@dataclass(frozen=True)
class ReplayCheckpoint:
    """Pre-quarantine fingerprint a replay must reproduce mid-stream.

    ``count`` is the number of owned events the shard had applied when
    the checkpoint was taken; ``state_hash`` is its
    :meth:`Shard.state_hash` at that instant. A replay that reaches
    *count* events with a different hash rebuilt different state than
    the shard actually held — the journal and the live stream diverged.
    """

    count: int
    state_hash: str


@dataclass(frozen=True)
class ReplayResult:
    """What :func:`replay_stream` reproduced, for verification.

    Attributes
    ----------
    count:
        Owned events applied to the shard.
    chain:
        Final rolling stream hash (:func:`stream_step`) over them.
    checkpoint_ok:
        False when a :class:`ReplayCheckpoint` was given and the
        rebuilt state missed it (wrong hash at the checkpoint count, or
        the stream ended before reaching it).
    detail:
        Human-readable mismatch description when ``checkpoint_ok`` is
        False.
    """

    count: int
    chain: bytes
    checkpoint_ok: bool = True
    detail: str | None = None


def replay_stream(
    shard: "Shard",
    events: Iterable[Mapping],
    checkpoint: ReplayCheckpoint | None = None,
    chain: bytes = b"",
    already: int = 0,
) -> ReplayResult:
    """Replay *events* into *shard*, keeping the verification chain.

    Events for machines the shard does not own are skipped (the journal
    is fleet-wide; each shard replays its slice). *chain* and *already*
    continue a previous segment — catch-up rounds of an incremental
    replay pass the chain and count where the last round stopped, so
    the returned count/chain stay cumulative over the whole stream.
    Raises :class:`~repro.errors.ModelError` if an owned event fails to
    apply — a corrupt or reordered journal.
    """
    owned = set(shard.machine_ids)
    count = already
    checkpoint_ok = True
    detail: str | None = None
    for event in events:
        if event.get("machine") not in owned:
            continue
        shard.apply(event)
        count += 1
        chain = stream_step(chain, event)
        if checkpoint is not None and count == checkpoint.count:
            got = shard.state_hash()
            if got != checkpoint.state_hash:
                checkpoint_ok = False
                detail = (
                    f"state hash at event {count} is {got}, "
                    f"expected {checkpoint.state_hash}"
                )
    if checkpoint is not None and count < checkpoint.count and checkpoint_ok:
        checkpoint_ok = False
        detail = (
            f"stream ended at {count} events, before the checkpoint "
            f"at {checkpoint.count}"
        )
    return ReplayResult(count, chain, checkpoint_ok, detail)


@dataclass(frozen=True)
class ShardPolicy:
    """Containment and re-admission parameters for one shard.

    Attributes
    ----------
    deadline:
        Seconds one event application may take before it counts as a
        failure (a deadline blowout — the shard is wedged or thrashing
        its O(p²) rebuild path).
    failure_threshold:
        Consecutive failures that quarantine the shard (feeds the
        shard's :class:`~repro.reliability.breaker.CircuitBreaker`).
    recovery_time:
        Seconds quarantined before a rebuild attempt is admitted.
    budget:
        Optional total wall-clock budget across all rebuild attempts;
        once spent the shard stays quarantined for good and its
        machines are served analytically forever.
    """

    deadline: float = 1.0
    failure_threshold: int = 3
    recovery_time: float = 5.0
    budget: float | None = None

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline!r}")
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold!r}"
            )
        if self.recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {self.recovery_time!r}")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget!r}")


class Shard:
    """Live per-machine :class:`SlowdownManager` state for a machine slice.

    Parameters
    ----------
    shard_id:
        Index of this shard within the service.
    machine_ids:
        The machines this shard owns (the service routes events by
        ``machine % num_shards``).
    delay_comp, delay_comm, delay_comm_sized:
        Calibrated delay tables shared by every manager; ``None``
        degrades the affected queries to the analytic fallback.
    """

    def __init__(
        self,
        shard_id: int,
        machine_ids: Iterable[int],
        delay_comp: DelayTable | None = None,
        delay_comm: DelayTable | None = None,
        delay_comm_sized: SizedDelayTable | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.machine_ids = tuple(machine_ids)
        self._tables = (delay_comp, delay_comm, delay_comm_sized)
        self.managers: dict[int, SlowdownManager] = {
            m: SlowdownManager(delay_comp, delay_comm, delay_comm_sized)
            for m in self.machine_ids
        }
        #: Machines whose memoized slowdowns are stale.
        self._dirty: set[int] = set(self.machine_ids)
        self._comp: dict[int, float] = {}
        self._comm: dict[int, float] = {}
        self._conf: dict[int, Confidence] = {}
        #: Events applied since construction (or since replay).
        self.applied = 0

    # -- event stream ---------------------------------------------------------

    def apply(self, event: Mapping) -> None:
        """Apply one arrive/depart event to its machine's manager.

        Raises :class:`~repro.errors.ModelError` on malformed events
        (unknown op, machine outside this shard, duplicate arrival,
        unknown departure) — the service treats that as a shard failure
        and routes it into quarantine accounting.
        """
        machine = event["machine"]
        manager = self.managers.get(machine)
        if manager is None:
            raise ModelError(
                f"machine {machine!r} is not owned by shard {self.shard_id}"
            )
        op = event["op"]
        if op == "arrive":
            manager.arrive(
                ApplicationProfile(
                    name=event["app"],
                    comm_fraction=event["comm_fraction"],
                    message_size=event["message_size"],
                )
            )
        elif op == "depart":
            manager.depart(event["app"])
        else:
            raise ModelError(f"unknown fleet event op {op!r}")
        self._dirty.add(machine)
        self.applied += 1

    # -- queries --------------------------------------------------------------

    def _refresh(self, machine: int) -> None:
        manager = self.managers[machine]
        comp = manager.comp_slowdown_tagged()
        comm = manager.comm_slowdown_tagged()
        self._comp[machine] = float(comp.value)
        self._comm[machine] = float(comm.value)
        self._conf[machine] = min(comp.confidence, comm.confidence)
        self._dirty.discard(machine)

    def slowdowns(self, machine: int) -> tuple[float, float, Confidence]:
        """Memoized ``(comp, comm, confidence)`` for *machine* — O(1) warm."""
        if machine in self._dirty:
            self._refresh(machine)
        return self._comp[machine], self._comm[machine], self._conf[machine]

    @property
    def rebuilds(self) -> int:
        """Total O(p²) distribution rebuilds across this shard's managers."""
        return sum(m.rebuilds for m in self.managers.values())

    def population(self) -> int:
        """Total applications registered across this shard's machines."""
        return sum(len(m) for m in self.managers.values())

    # -- recovery -------------------------------------------------------------

    def state_hash(self) -> str:
        """Bit-exact fingerprint of the shard's full model state.

        Covers, per machine in sorted order: the registered profiles
        (sorted by name) and the raw bytes of both overlap-distribution
        arrays. Two shards that consumed the same event sequence hash
        identically — the replay-recovery oracle.
        """
        h = hashlib.blake2b(digest_size=16)
        for machine in sorted(self.machine_ids):
            manager = self.managers[machine]
            h.update(f"m{machine}:".encode())
            for name, prof in sorted(manager.snapshot().items()):
                h.update(
                    f"{name},{prof.comm_fraction!r},{prof.message_size!r};".encode()
                )
            h.update(manager.pcomm.tobytes())
            h.update(manager.pcomp.tobytes())
        return h.hexdigest()

    def fresh(self) -> "Shard":
        """A new empty shard with the same id, machines and tables."""
        return Shard(self.shard_id, self.machine_ids, *self._tables)
