"""A fleet shard: live contention state for a slice of the machines.

Each shard owns one :class:`~repro.core.runtime.SlowdownManager` per
machine in its slice and keeps it current by consuming the service's
arrive/depart event stream. Queries do not touch the managers directly:
the shard memoizes each machine's tagged ``(comp, comm, confidence)``
triple and invalidates it per machine on writes, because the tagged
slowdown queries are O(p) Python loops over the delay tables while an
arrival is a cheap O(p) NumPy update — a fleet that recomputed every
machine's slowdowns on every event would melt long before the 10k
queries/sec target.

:meth:`Shard.state_hash` fingerprints the full model state — every
machine's registered profiles and both overlap-distribution arrays,
byte for byte. Replaying the same event prefix through a fresh shard
runs the identical floating-point operations in the identical order, so
the hash is the recovery test's bit-identity oracle
(:mod:`repro.fleet.service` rebuilds quarantined shards this way).

:class:`ShardPolicy` is the containment contract, mirroring
:class:`~repro.parallel.containment.FailurePolicy`: how slow an event
application may be before it counts as a failure (deadline blowout),
how many failures quarantine the shard, and the recovery/budget
parameters of the :class:`~repro.reliability.breaker.CircuitBreaker`
that gates re-admission after a rebuild.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..core.batch import cm2_slowdowns, sequential_fold, sequential_folds
from ..core.params import DelayTable, SizedDelayTable
from ..core.probability import add_application, overlap_distribution, remove_application
from ..core.runtime import SlowdownManager
from ..core.workload import ApplicationProfile
from ..errors import ModelError
from ..reliability.degrade import Confidence
from ..units import check_fraction, check_nonnegative

__all__ = [
    "ArrayShard",
    "Shard",
    "ShardPolicy",
    "ReplayCheckpoint",
    "ReplayResult",
    "STREAM_FIELDS",
    "replay_stream",
    "stream_step",
]

#: Event fields that determine shard state. Sequence stamps (``seq``,
#: ``v``) are deliberately excluded so the live copy of an event, its
#: journal round-trip, and its replayed copy all chain identically.
STREAM_FIELDS = ("op", "app", "tenant", "machine", "comm_fraction", "message_size")


def stream_step(chain: bytes, event: Mapping) -> bytes:
    """Advance a rolling stream hash by one event.

    The chain is a blake2b link over the previous chain value and the
    canonical JSON of the event's :data:`STREAM_FIELDS`. Two consumers
    that saw the same events in the same order hold the same chain —
    the cheap, incremental cousin of :meth:`Shard.state_hash` used to
    verify journal replays cover exactly the accounted stream.
    """
    h = hashlib.blake2b(chain, digest_size=16)
    payload = {field: event[field] for field in STREAM_FIELDS if field in event}
    h.update(json.dumps(payload, sort_keys=True, separators=(",", ":")).encode())
    return h.digest()


@dataclass(frozen=True)
class ReplayCheckpoint:
    """Pre-quarantine fingerprint a replay must reproduce mid-stream.

    ``count`` is the number of owned events the shard had applied when
    the checkpoint was taken; ``state_hash`` is its
    :meth:`Shard.state_hash` at that instant. A replay that reaches
    *count* events with a different hash rebuilt different state than
    the shard actually held — the journal and the live stream diverged.
    """

    count: int
    state_hash: str


@dataclass(frozen=True)
class ReplayResult:
    """What :func:`replay_stream` reproduced, for verification.

    Attributes
    ----------
    count:
        Owned events applied to the shard.
    chain:
        Final rolling stream hash (:func:`stream_step`) over them.
    checkpoint_ok:
        False when a :class:`ReplayCheckpoint` was given and the
        rebuilt state missed it (wrong hash at the checkpoint count, or
        the stream ended before reaching it).
    detail:
        Human-readable mismatch description when ``checkpoint_ok`` is
        False.
    """

    count: int
    chain: bytes
    checkpoint_ok: bool = True
    detail: str | None = None


def replay_stream(
    shard: "Shard | ArrayShard",
    events: Iterable[Mapping],
    checkpoint: ReplayCheckpoint | None = None,
    chain: bytes = b"",
    already: int = 0,
) -> ReplayResult:
    """Replay *events* into *shard*, keeping the verification chain.

    Events for machines the shard does not own are skipped (the journal
    is fleet-wide; each shard replays its slice). *chain* and *already*
    continue a previous segment — catch-up rounds of an incremental
    replay pass the chain and count where the last round stopped, so
    the returned count/chain stay cumulative over the whole stream.
    Raises :class:`~repro.errors.ModelError` if an owned event fails to
    apply — a corrupt or reordered journal.
    """
    owned = set(shard.machine_ids)
    count = already
    checkpoint_ok = True
    detail: str | None = None
    for event in events:
        if event.get("machine") not in owned:
            continue
        shard.apply(event)
        count += 1
        chain = stream_step(chain, event)
        if checkpoint is not None and count == checkpoint.count:
            got = shard.state_hash()
            if got != checkpoint.state_hash:
                checkpoint_ok = False
                detail = (
                    f"state hash at event {count} is {got}, "
                    f"expected {checkpoint.state_hash}"
                )
    if checkpoint is not None and count < checkpoint.count and checkpoint_ok:
        checkpoint_ok = False
        detail = (
            f"stream ended at {count} events, before the checkpoint "
            f"at {checkpoint.count}"
        )
    return ReplayResult(count, chain, checkpoint_ok, detail)


@dataclass(frozen=True)
class ShardPolicy:
    """Containment and re-admission parameters for one shard.

    Attributes
    ----------
    deadline:
        Seconds one event application may take before it counts as a
        failure (a deadline blowout — the shard is wedged or thrashing
        its O(p²) rebuild path).
    failure_threshold:
        Consecutive failures that quarantine the shard (feeds the
        shard's :class:`~repro.reliability.breaker.CircuitBreaker`).
    recovery_time:
        Seconds quarantined before a rebuild attempt is admitted.
    budget:
        Optional total wall-clock budget across all rebuild attempts;
        once spent the shard stays quarantined for good and its
        machines are served analytically forever.
    """

    deadline: float = 1.0
    failure_threshold: int = 3
    recovery_time: float = 5.0
    budget: float | None = None

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline!r}")
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold!r}"
            )
        if self.recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {self.recovery_time!r}")
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget!r}")


class Shard:
    """Live per-machine :class:`SlowdownManager` state for a machine slice.

    Parameters
    ----------
    shard_id:
        Index of this shard within the service.
    machine_ids:
        The machines this shard owns (the service routes events by
        ``machine % num_shards``).
    delay_comp, delay_comm, delay_comm_sized:
        Calibrated delay tables shared by every manager; ``None``
        degrades the affected queries to the analytic fallback.
    """

    def __init__(
        self,
        shard_id: int,
        machine_ids: Iterable[int],
        delay_comp: DelayTable | None = None,
        delay_comm: DelayTable | None = None,
        delay_comm_sized: SizedDelayTable | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.machine_ids = tuple(machine_ids)
        self._tables = (delay_comp, delay_comm, delay_comm_sized)
        self.managers: dict[int, SlowdownManager] = {
            m: SlowdownManager(delay_comp, delay_comm, delay_comm_sized)
            for m in self.machine_ids
        }
        #: Machines whose memoized slowdowns are stale.
        self._dirty: set[int] = set(self.machine_ids)
        self._comp: dict[int, float] = {}
        self._comm: dict[int, float] = {}
        self._conf: dict[int, Confidence] = {}
        #: Events applied since construction (or since replay).
        self.applied = 0

    # -- event stream ---------------------------------------------------------

    def apply(self, event: Mapping) -> None:
        """Apply one arrive/depart event to its machine's manager.

        Raises :class:`~repro.errors.ModelError` on malformed events
        (unknown op, machine outside this shard, duplicate arrival,
        unknown departure) — the service treats that as a shard failure
        and routes it into quarantine accounting.
        """
        machine = event["machine"]
        manager = self.managers.get(machine)
        if manager is None:
            raise ModelError(
                f"machine {machine!r} is not owned by shard {self.shard_id}"
            )
        op = event["op"]
        if op == "arrive":
            manager.arrive(
                ApplicationProfile(
                    name=event["app"],
                    comm_fraction=event["comm_fraction"],
                    message_size=event["message_size"],
                )
            )
        elif op == "depart":
            manager.depart(event["app"])
        else:
            raise ModelError(f"unknown fleet event op {op!r}")
        self._dirty.add(machine)
        self.applied += 1

    # -- queries --------------------------------------------------------------

    def _refresh(self, machine: int) -> None:
        manager = self.managers[machine]
        comp = manager.comp_slowdown_tagged()
        comm = manager.comm_slowdown_tagged()
        self._comp[machine] = float(comp.value)
        self._comm[machine] = float(comm.value)
        self._conf[machine] = min(comp.confidence, comm.confidence)
        self._dirty.discard(machine)

    def slowdowns(self, machine: int) -> tuple[float, float, Confidence]:
        """Memoized ``(comp, comm, confidence)`` for *machine* — O(1) warm."""
        if machine in self._dirty:
            self._refresh(machine)
        return self._comp[machine], self._comm[machine], self._conf[machine]

    def slowdowns_batch(
        self, machines: Iterable[int]
    ) -> dict[int, tuple[float, float, Confidence]]:
        """:meth:`slowdowns` over many machines — one result per machine.

        The object-backed shard evaluates each machine independently;
        :class:`ArrayShard` overrides this with a vectorized sweep. Both
        sides of the seam answer bit-identically.
        """
        return {machine: self.slowdowns(machine) for machine in machines}

    @property
    def rebuilds(self) -> int:
        """Total O(p²) distribution rebuilds across this shard's managers."""
        return sum(m.rebuilds for m in self.managers.values())

    def population(self) -> int:
        """Total applications registered across this shard's machines."""
        return sum(len(m) for m in self.managers.values())

    # -- recovery -------------------------------------------------------------

    def state_hash(self) -> str:
        """Bit-exact fingerprint of the shard's full model state.

        Covers, per machine in sorted order: the registered profiles
        (sorted by name) and the raw bytes of both overlap-distribution
        arrays. Two shards that consumed the same event sequence hash
        identically — the replay-recovery oracle.
        """
        h = hashlib.blake2b(digest_size=16)
        for machine in sorted(self.machine_ids):
            manager = self.managers[machine]
            h.update(f"m{machine}:".encode())
            for name, prof in sorted(manager.snapshot().items()):
                h.update(
                    f"{name},{prof.comm_fraction!r},{prof.message_size!r};".encode()
                )
            h.update(manager.pcomm.tobytes())
            h.update(manager.pcomp.tobytes())
        return h.hexdigest()

    def fresh(self) -> "Shard":
        """A new empty shard with the same id, machines and tables."""
        return Shard(self.shard_id, self.machine_ids, *self._tables)


class _MachineView:
    """A :class:`SlowdownManager`-shaped façade over one :class:`ArrayShard` row.

    Exists so code written against ``shard.managers[machine]`` (tests,
    the desync phase of the fleet experiment) keeps working against the
    struct-of-arrays backend. Mutations go straight to the shard's
    arrays and — exactly like calling a manager directly — bypass the
    shard's dirty set and ``applied`` counter.
    """

    __slots__ = ("_shard", "_machine", "_i")

    def __init__(self, shard: "ArrayShard", machine: int) -> None:
        self._shard = shard
        self._machine = machine
        self._i = shard._row[machine]

    def __len__(self) -> int:
        return int(self._shard._plen[self._i])

    def __contains__(self, name: str) -> bool:
        return name in self._shard._slots[self._i]

    def __iter__(self) -> Iterator[ApplicationProfile]:
        return iter(self.snapshot().values())

    @property
    def p(self) -> int:
        return len(self)

    @property
    def pcomm(self) -> np.ndarray:
        i, p = self._i, len(self)
        return self._shard._pcomm[i, : p + 1].copy()

    @property
    def pcomp(self) -> np.ndarray:
        i, p = self._i, len(self)
        return self._shard._pcomp[i, : p + 1].copy()

    def arrive(self, profile: ApplicationProfile) -> None:
        self._shard._arrive(
            self._i, profile.name, profile.comm_fraction, profile.message_size
        )

    def depart(self, name: str) -> None:
        self._shard._depart(self._i, name)

    def max_message_size(self) -> float:
        return self._shard._max_message_size(self._i)

    def snapshot(self) -> Mapping[str, ApplicationProfile]:
        shard, i = self._shard, self._i
        return {
            name: ApplicationProfile(
                name=name,
                comm_fraction=float(shard._frac[slot]),
                message_size=float(shard._size[slot]),
            )
            for name, slot in shard._slots[i].items()
        }


class _MachineViews:
    """Mapping-style ``managers`` compatibility container for :class:`ArrayShard`."""

    __slots__ = ("_shard",)

    def __init__(self, shard: "ArrayShard") -> None:
        self._shard = shard

    def __getitem__(self, machine: int) -> _MachineView:
        if machine not in self._shard._row:
            raise KeyError(machine)
        return _MachineView(self._shard, machine)

    def get(self, machine: int, default=None):
        if machine not in self._shard._row:
            return default
        return _MachineView(self._shard, machine)

    def __contains__(self, machine: int) -> bool:
        return machine in self._shard._row

    def __len__(self) -> int:
        return len(self._shard._row)

    def __iter__(self) -> Iterator[int]:
        return iter(self._shard._row)

    def keys(self):
        return self._shard._row.keys()

    def values(self) -> Iterator[_MachineView]:
        for machine in self._shard._row:
            yield _MachineView(self._shard, machine)

    def items(self):
        for machine in self._shard._row:
            yield machine, _MachineView(self._shard, machine)


class ArrayShard:
    """Struct-of-arrays shard state: :class:`Shard` semantics, pooled arrays.

    Instead of one :class:`SlowdownManager` object plus one
    ``ApplicationProfile`` per app, the whole machine slice lives in a
    handful of contiguous NumPy arrays:

    * ``_pcomm`` / ``_pcomp`` — 2D overlap-distribution matrices, one
      row per machine, columns grown by doubling; row *i*'s live prefix
      is ``[: p_i + 1]``.
    * ``_frac`` / ``_size`` / ``_names`` — pooled per-app metadata; an
      app is a slot index (``_slots[row][name]``) into these pools,
      recycled through a free list on departure.
    * ``_plen`` — per-machine app counts; ``_mcomp``/``_mcomm``/
      ``_mconf`` — the memoized tagged-slowdown vectors, refreshed for
      all dirty machines at once through :mod:`repro.core.batch`.

    Per app this costs ~16 B of pooled numeric state plus two float64
    matrix cells and one dict entry — versus a profile object, a dict
    entry and two array cells per app in the object layout — which is
    what lets one process hold 1M registered apps.

    Bit-identity: arrivals/departures run the *same*
    :func:`~repro.core.probability.add_application` /
    :func:`~repro.core.probability.remove_application` /
    :func:`~repro.core.probability.overlap_distribution` update ladder
    on row views, and the batched refresh reproduces the scalar
    accumulation order of :class:`SlowdownManager`'s tagged queries via
    :func:`~repro.core.batch.sequential_fold`, so
    :meth:`state_hash` and every served ``(comp, comm, confidence)``
    triple are bit-identical to the object-backed oracle (pinned by the
    differential suite in ``tests/fleet/test_array_shard.py``).

    Note: profile metadata is held as float64, so events must carry
    float ``comm_fraction``/``message_size`` values — which the service
    validation layer and the JSON journal both guarantee.
    """

    _SLOT_CAP = 64
    _COL_CAP = 8

    def __init__(
        self,
        shard_id: int,
        machine_ids: Iterable[int],
        delay_comp: DelayTable | None = None,
        delay_comm: DelayTable | None = None,
        delay_comm_sized: SizedDelayTable | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.machine_ids = tuple(machine_ids)
        self._tables = (delay_comp, delay_comm, delay_comm_sized)
        self.delay_comp = delay_comp
        self.delay_comm = delay_comm
        self.delay_comm_sized = delay_comm_sized
        n = len(self.machine_ids)
        self._row: dict[int, int] = {m: i for i, m in enumerate(self.machine_ids)}
        #: Per machine row: app name → pooled slot, insertion-ordered
        #: (mirrors ``SlowdownManager._profiles`` ordering, which the
        #: rebuild and analytic-comm folds depend on).
        self._slots: list[dict[str, int]] = [{} for _ in range(n)]
        self._frac = np.zeros(self._SLOT_CAP)
        self._size = np.zeros(self._SLOT_CAP)
        self._names: list[str | None] = [None] * self._SLOT_CAP
        self._free: list[int] = []
        self._next_slot = 0
        self._plen = np.zeros(n, dtype=np.int64)
        self._pcomm = np.zeros((n, self._COL_CAP))
        self._pcomp = np.zeros((n, self._COL_CAP))
        if n:
            self._pcomm[:, 0] = 1.0
            self._pcomp[:, 0] = 1.0
        self._mcomp = np.ones(n)
        self._mcomm = np.ones(n)
        self._mconf = np.full(n, int(Confidence.CALIBRATED), dtype=np.int64)
        self._dirty: set[int] = set(self.machine_ids)
        #: Cached ``table.delay(i, extrapolate=True)`` vectors, extended
        #: lazily as contention levels grow; index 0 is unused padding.
        self._vcomp = np.zeros(1)
        self._vcomm = np.zeros(1)
        self._vsized: dict[int, np.ndarray] = {}
        self.applied = 0
        #: O(p²) distribution rebuilds (departure deconvolution fallback).
        self.rebuilds = 0

    # -- pooled-slot management -----------------------------------------------

    def _alloc_slot(self, name: str, frac: float, size: float) -> int:
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._next_slot
            self._next_slot += 1
            if slot >= self._frac.size:
                cap = self._frac.size * 2
                for attr in ("_frac", "_size"):
                    grown = np.zeros(cap)
                    grown[: slot] = getattr(self, attr)[:slot]
                    setattr(self, attr, grown)
                self._names.extend([None] * (cap - len(self._names)))
        self._frac[slot] = frac
        self._size[slot] = size
        self._names[slot] = name
        return slot

    def _grow_cols(self, needed: int) -> None:
        cols = self._pcomm.shape[1]
        while cols < needed:
            cols *= 2
        for attr in ("_pcomm", "_pcomp"):
            old = getattr(self, attr)
            grown = np.zeros((old.shape[0], cols))
            grown[:, : old.shape[1]] = old
            setattr(self, attr, grown)

    # -- event stream ---------------------------------------------------------

    def apply(self, event: Mapping) -> None:
        """Apply one arrive/depart event — same contract as :meth:`Shard.apply`."""
        machine = event["machine"]
        i = self._row.get(machine)
        if i is None:
            raise ModelError(
                f"machine {machine!r} is not owned by shard {self.shard_id}"
            )
        op = event["op"]
        if op == "arrive":
            self._arrive(
                i, event["app"], event["comm_fraction"], event["message_size"]
            )
        elif op == "depart":
            self._depart(i, event["app"])
        else:
            raise ModelError(f"unknown fleet event op {op!r}")
        self._dirty.add(machine)
        self.applied += 1

    def _arrive(self, i: int, name: str, frac: float, size: float) -> None:
        # Same validation ladder (and exception types) as constructing
        # an ApplicationProfile, then the manager's duplicate check.
        frac = check_fraction(frac, "comm_fraction")
        size = check_nonnegative(size, "message_size")
        if frac > 0 and size <= 0:
            raise ModelError(
                f"application {name!r} communicates {frac:.0%} of the time "
                "but declares no message size"
            )
        slots = self._slots[i]
        if name in slots:
            raise ModelError(f"application {name!r} is already registered")
        p = int(self._plen[i])
        # Compute both updates from the row views *before* any capacity
        # growth — growth reallocates the matrices and would orphan them.
        new_comm = add_application(self._pcomm[i, : p + 1], frac)
        new_comp = add_application(self._pcomp[i, : p + 1], 1.0 - frac)
        if p + 2 > self._pcomm.shape[1]:
            self._grow_cols(p + 2)
        slots[name] = self._alloc_slot(name, frac, size)
        self._pcomm[i, : p + 2] = new_comm
        self._pcomp[i, : p + 2] = new_comp
        self._plen[i] = p + 1

    def _depart(self, i: int, name: str) -> None:
        slots = self._slots[i]
        slot = slots.pop(name, None)
        if slot is None:
            raise ModelError(f"application {name!r} is not registered")
        p = int(self._plen[i])
        frac = float(self._frac[slot])
        try:
            new_comm = remove_application(self._pcomm[i, : p + 1], frac)
            new_comp = remove_application(self._pcomp[i, : p + 1], 1.0 - frac)
        except ModelError:
            # Deconvolution ill-conditioned — the O(p²) rebuild, from
            # the remaining fractions in registration order.
            fractions = [float(self._frac[s]) for s in slots.values()]
            new_comm = overlap_distribution(fractions)
            new_comp = overlap_distribution([1.0 - f for f in fractions])
            self.rebuilds += 1
        self._pcomm[i, :p] = new_comm
        self._pcomp[i, :p] = new_comp
        self._plen[i] = p - 1
        self._names[slot] = None
        self._free.append(slot)

    # -- queries --------------------------------------------------------------

    @staticmethod
    def _extended(vec: np.ndarray, table: DelayTable, n: int) -> np.ndarray:
        """Delay vector covering levels ``1..n`` (``vec[0]`` is padding)."""
        if vec.size > n:
            return vec
        grown = np.zeros(n + 1)
        grown[: vec.size] = vec
        for level in range(max(1, vec.size), n + 1):
            grown[level] = table.delay(level, extrapolate=True)
        return grown

    @staticmethod
    def _max_level(tail: np.ndarray) -> int:
        """Largest contention level with mass, given ``dist[1 : p + 1]``."""
        nz = np.nonzero(tail > 0.0)[0]
        return int(nz[-1]) + 1 if nz.size else 0

    def _max_message_size(self, i: int) -> float:
        slots = self._slots[i]
        if not slots:
            return 0.0
        order = np.fromiter(slots.values(), np.int64, len(slots))
        return float(self._size[order].max())

    def _comm_calibrated(self, i: int, p: int) -> tuple[float, Confidence]:
        self._vcomp = self._extended(self._vcomp, self.delay_comp, p)
        self._vcomm = self._extended(self._vcomm, self.delay_comm, p)
        comp_tail = self._pcomp[i, 1 : p + 1]
        comm_tail = self._pcomm[i, 1 : p + 1]
        # Zero-mass levels contribute an exact +0.0 product, which the
        # sequential fold absorbs bit-neutrally — same accumulation
        # order as weighted_delay's skip-zero scalar loop.
        wd_comp = sequential_fold(comp_tail * self._vcomp[1 : p + 1])
        wd_comm = sequential_fold(comm_tail * self._vcomm[1 : p + 1])
        value = (1.0 + wd_comp) + wd_comm
        within = (
            self._max_level(comp_tail) <= self.delay_comp.max_level
            and self._max_level(comm_tail) <= self.delay_comm.max_level
        )
        return value, Confidence.CALIBRATED if within else Confidence.EXTRAPOLATED

    def _comp_calibrated(self, i: int, p: int) -> tuple[float, Confidence]:
        sized = self.delay_comm_sized
        size = self._max_message_size(i)
        bucket = sized.select_bucket(size)
        vec = self._extended(self._vsized.get(bucket, np.zeros(1)), sized.tables[bucket], p)
        self._vsized[bucket] = vec
        # The copy keeps np.dot's operand a fresh contiguous allocation,
        # exactly like the manager's standalone distribution array.
        cpu_term = float(np.dot(np.arange(p + 1), self._pcomp[i, : p + 1].copy()))
        comm_tail = self._pcomm[i, 1 : p + 1]
        comm_term = sequential_fold(comm_tail * vec[1 : p + 1])
        value = 1.0 + cpu_term + comm_term
        comm_level = self._max_level(comm_tail)
        if comm_level > 0 and comm_level > sized.tables[bucket].max_level:
            return value, Confidence.EXTRAPOLATED
        return value, Confidence.CALIBRATED

    def _refresh_batch(self) -> None:
        machines = sorted(self._dirty)
        rows = np.fromiter(
            (self._row[m] for m in machines), np.int64, len(machines)
        )
        ps = self._plen[rows]
        analytic_comp = self.delay_comm_sized is None
        analytic_comm = self.delay_comp is None or self.delay_comm is None
        comp_vals = cm2_slowdowns(ps) if analytic_comp else None
        comm_vals = None
        if analytic_comm:
            # 1 + Σ f_k per machine, folded in registration order —
            # the batched form of analytic_comm_slowdown.
            segments = [
                self._frac[np.fromiter(s.values(), np.int64, len(s))]
                for s in (self._slots[i] for i in rows)
            ]
            comm_vals = sequential_folds(segments, init=1.0)
        for k, i in enumerate(rows):
            i = int(i)
            p = int(ps[k])
            if p == 0:
                self._mcomp[i] = 1.0
                self._mcomm[i] = 1.0
                self._mconf[i] = int(Confidence.CALIBRATED)
                continue
            if analytic_comp:
                comp, comp_conf = float(comp_vals[k]), Confidence.ANALYTIC
            else:
                comp, comp_conf = self._comp_calibrated(i, p)
            if analytic_comm:
                comm, comm_conf = float(comm_vals[k]), Confidence.ANALYTIC
            else:
                comm, comm_conf = self._comm_calibrated(i, p)
            self._mcomp[i] = comp
            self._mcomm[i] = comm
            self._mconf[i] = int(min(comp_conf, comm_conf))
        self._dirty.clear()

    def slowdowns(self, machine: int) -> tuple[float, float, Confidence]:
        """Memoized ``(comp, comm, confidence)`` for *machine* — O(1) warm."""
        if self._dirty:
            self._refresh_batch()
        i = self._row[machine]
        return (
            float(self._mcomp[i]),
            float(self._mcomm[i]),
            Confidence(int(self._mconf[i])),
        )

    def slowdowns_batch(
        self, machines: Iterable[int]
    ) -> dict[int, tuple[float, float, Confidence]]:
        """Tagged slowdowns for many machines in one dirty-set sweep."""
        if self._dirty:
            self._refresh_batch()
        out: dict[int, tuple[float, float, Confidence]] = {}
        for machine in machines:
            i = self._row[machine]
            out[machine] = (
                float(self._mcomp[i]),
                float(self._mcomm[i]),
                Confidence(int(self._mconf[i])),
            )
        return out

    @property
    def managers(self) -> _MachineViews:
        """Per-machine :class:`SlowdownManager`-compatible views."""
        return _MachineViews(self)

    def population(self) -> int:
        """Total applications registered across this shard's machines."""
        return int(self._plen.sum())

    # -- recovery -------------------------------------------------------------

    def state_hash(self) -> str:
        """Bit-exact fingerprint — byte-identical to :meth:`Shard.state_hash`."""
        h = hashlib.blake2b(digest_size=16)
        for machine in sorted(self.machine_ids):
            i = self._row[machine]
            h.update(f"m{machine}:".encode())
            slots = self._slots[i]
            for name in sorted(slots):
                slot = slots[name]
                h.update(
                    f"{name},{float(self._frac[slot])!r},"
                    f"{float(self._size[slot])!r};".encode()
                )
            p = int(self._plen[i])
            h.update(self._pcomm[i, : p + 1].tobytes())
            h.update(self._pcomp[i, : p + 1].tobytes())
        return h.hexdigest()

    def fresh(self) -> "ArrayShard":
        """A new empty shard with the same id, machines and tables."""
        return ArrayShard(self.shard_id, self.machine_ids, *self._tables)
