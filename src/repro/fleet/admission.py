"""Admission control: token buckets, tenant quotas, bounded queues.

The fleet service (:mod:`repro.fleet.service`) is multi-tenant: every
placement query and every registered application belongs to a tenant,
and one noisy tenant must not be able to starve the rest or grow the
service's memory without bound. Three small mechanisms enforce that:

* :class:`TokenBucket` — the classic rate limiter: a tenant accrues
  query tokens at ``rate`` per second up to ``burst``; a query spends
  one. An empty bucket does not *reject* the query — the service
  answers it anyway from the analytic fallback chain
  (:mod:`repro.reliability.degrade`), tagged ANALYTIC and counted as
  shed — so overload degrades answer quality, never availability.
* :class:`TenantQuota` / :class:`AdmissionController` — per-tenant
  limits (query rate, registered-application cap) with a default quota
  for tenants that have none of their own.
* :class:`BoundedQueue` — the event-feed buffer with explicit
  backpressure: ``offer`` returns False instead of growing past
  ``capacity``, so a producer that outruns the service sees the
  pushback immediately rather than as an eventual OOM kill.

Everything here is clock-injectable (mirroring
:class:`~repro.reliability.breaker.CircuitBreaker`) so tests pin the
refill arithmetic deterministically.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["TokenBucket", "TenantQuota", "AdmissionController", "BoundedQueue"]


class TokenBucket:
    """Lazy-refill token bucket: ``rate`` tokens/second up to ``burst``.

    The bucket starts full. :meth:`try_acquire` refills from the
    injectable clock on demand (no timers), spends one token if
    available, and reports whether it did.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate!r}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    @property
    def tokens(self) -> float:
        """Tokens available right now (after a lazy refill)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend *n* tokens if available; False (nothing spent) if not."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits the :class:`AdmissionController` enforces.

    Attributes
    ----------
    query_rate:
        Sustained placement queries per second before shedding.
    query_burst:
        Burst allowance above the sustained rate (bucket depth).
    max_apps:
        Registered-application cap; arrivals beyond it are rejected
        (the event is not logged or applied).
    """

    query_rate: float = 100.0
    query_burst: float = 200.0
    max_apps: int = 10_000

    def __post_init__(self) -> None:
        if self.query_rate < 0:
            raise ValueError(f"query_rate must be >= 0, got {self.query_rate!r}")
        if self.query_burst <= 0:
            raise ValueError(f"query_burst must be > 0, got {self.query_burst!r}")
        if self.max_apps < 0:
            raise ValueError(f"max_apps must be >= 0, got {self.max_apps!r}")


class AdmissionController:
    """Maps tenants to quotas and meters their query traffic.

    Parameters
    ----------
    default:
        Quota applied to tenants without an explicit override.
    overrides:
        Per-tenant quota overrides, keyed by tenant id.
    clock:
        Monotonic time source shared by every bucket (injectable).
    """

    def __init__(
        self,
        default: TenantQuota | None = None,
        overrides: Mapping[str, TenantQuota] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default = default if default is not None else TenantQuota()
        self.overrides = dict(overrides or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def quota(self, tenant: str) -> TenantQuota:
        """The quota governing *tenant*."""
        return self.overrides.get(tenant, self.default)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            q = self.quota(tenant)
            bucket = TokenBucket(q.query_rate, q.query_burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit_query(self, tenant: str) -> bool:
        """One placement query from *tenant*: within the rate quota?

        False means the query should be *shed* (answered analytically),
        not errored — the caller owns that degradation.
        """
        return self._bucket(tenant).try_acquire()

    def admit_app(self, tenant: str, current_apps: int) -> bool:
        """May *tenant*, currently holding *current_apps*, register one more?"""
        return current_apps < self.quota(tenant).max_apps


class BoundedQueue:
    """FIFO with a hard capacity and explicit backpressure.

    ``offer`` refuses (returns False) instead of growing past
    *capacity* — the producer decides whether to retry, drop, or slow
    down. The service drains it with :meth:`take`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._items: deque[Any] = deque()
        #: Offers refused because the queue was full.
        self.refusals = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, item: Any) -> bool:
        """Enqueue *item*, or return False (backpressure) when full."""
        if self.full:
            self.refusals += 1
            return False
        self._items.append(item)
        return True

    def take(self) -> Any | None:
        """Dequeue the oldest item, or None when empty."""
        if not self._items:
            return None
        return self._items.popleft()
