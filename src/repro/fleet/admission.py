"""Admission control: token buckets, tenant quotas, bounded queues.

The fleet service (:mod:`repro.fleet.service`) is multi-tenant: every
placement query and every registered application belongs to a tenant,
and one noisy tenant must not be able to starve the rest or grow the
service's memory without bound. Three small mechanisms enforce that:

* :class:`TokenBucket` — the classic rate limiter: a tenant accrues
  query tokens at ``rate`` per second up to ``burst``; a query spends
  one. An empty bucket does not *reject* the query — the service
  answers it anyway from the analytic fallback chain
  (:mod:`repro.reliability.degrade`), tagged ANALYTIC and counted as
  shed — so overload degrades answer quality, never availability.
* :class:`TenantQuota` / :class:`AdmissionController` — per-tenant
  limits (query rate, registered-application cap) with a default quota
  for tenants that have none of their own.
* :class:`BoundedQueue` — the event-feed buffer with explicit
  backpressure: ``offer`` returns False instead of growing past
  ``capacity``, so a producer that outruns the service sees the
  pushback immediately rather than as an eventual OOM kill.

Everything here is clock-injectable (mirroring
:class:`~repro.reliability.breaker.CircuitBreaker`) so tests pin the
refill arithmetic deterministically.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["TokenBucket", "TenantQuota", "AdmissionController", "BoundedQueue"]


class TokenBucket:
    """Lazy-refill token bucket: ``rate`` tokens/second up to ``burst``.

    The bucket starts full. :meth:`try_acquire` refills from the
    injectable clock on demand (no timers), spends *n* tokens if
    available, and reports whether it did.

    The accounting is anchor-based rather than incremental: available
    tokens are always derived in one expression from a fixed anchor
    time, the balance at that anchor, and the tokens spent since —
    never by accumulating ``elapsed * rate`` slivers across refills.
    The incremental form rounds once per *observation*, so a caller
    that happened to poll :attr:`tokens` between refills could see a
    query arriving exactly at budget exhaustion — with its refill due
    the same tick — refused, effectively double-charged by accumulated
    float error. Deriving from the anchor rounds once per *acquire*
    regardless of how often the bucket is inspected, and makes
    :attr:`tokens` a genuinely side-effect-free read. A one-part-per-
    billion relative tolerance on the comparison absorbs the single
    remaining rounding (it can only advance a grant by ~1e-9 tokens,
    which the spend accounting immediately claws back).
    """

    #: Relative slack when comparing available tokens against a cost:
    #: wide enough to absorb one float rounding in ``elapsed * rate``,
    #: narrow enough never to grant a token that was genuinely spent.
    _SLACK = 1e-9

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate!r}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._anchor = clock()
        self._base = self.burst
        self._spent = 0.0

    def _available(self, now: float) -> float:
        elapsed = max(0.0, now - self._anchor)
        return min(self.burst, self._base + elapsed * self.rate - self._spent)

    @property
    def tokens(self) -> float:
        """Tokens available right now. Pure: polling never shifts grants."""
        return max(0.0, self._available(self._clock()))

    def try_acquire(self, n: float = 1.0) -> bool:
        """Spend *n* tokens if available; False (nothing spent) if not."""
        now = self._clock()
        available = self._available(now)
        if available >= self.burst:
            # Full bucket: re-anchor here so the cap discards surplus
            # accrual exactly once and ``_spent`` stays small.
            self._anchor = now
            self._base = self.burst
            self._spent = 0.0
            available = self.burst
        if n - available <= self._SLACK * max(n, self.burst):
            self._spent += n
            return True
        return False


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits the :class:`AdmissionController` enforces.

    Attributes
    ----------
    query_rate:
        Sustained placement queries per second before shedding.
    query_burst:
        Burst allowance above the sustained rate (bucket depth).
    max_apps:
        Registered-application cap; arrivals beyond it are rejected
        (the event is not logged or applied).
    """

    query_rate: float = 100.0
    query_burst: float = 200.0
    max_apps: int = 10_000

    def __post_init__(self) -> None:
        if self.query_rate < 0:
            raise ValueError(f"query_rate must be >= 0, got {self.query_rate!r}")
        if self.query_burst <= 0:
            raise ValueError(f"query_burst must be > 0, got {self.query_burst!r}")
        if self.max_apps < 0:
            raise ValueError(f"max_apps must be >= 0, got {self.max_apps!r}")


class AdmissionController:
    """Maps tenants to quotas and meters their query traffic.

    Parameters
    ----------
    default:
        Quota applied to tenants without an explicit override.
    overrides:
        Per-tenant quota overrides, keyed by tenant id.
    clock:
        Monotonic time source shared by every bucket (injectable).
    """

    def __init__(
        self,
        default: TenantQuota | None = None,
        overrides: Mapping[str, TenantQuota] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default = default if default is not None else TenantQuota()
        self.overrides = dict(overrides or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def quota(self, tenant: str) -> TenantQuota:
        """The quota governing *tenant*."""
        return self.overrides.get(tenant, self.default)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            q = self.quota(tenant)
            bucket = TokenBucket(q.query_rate, q.query_burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit_query(self, tenant: str) -> bool:
        """One placement query from *tenant*: within the rate quota?

        False means the query should be *shed* (answered analytically),
        not errored — the caller owns that degradation.
        """
        return self._bucket(tenant).try_acquire()

    def admit_app(self, tenant: str, current_apps: int) -> bool:
        """May *tenant*, currently holding *current_apps*, register one more?"""
        return current_apps < self.quota(tenant).max_apps


class BoundedQueue:
    """FIFO with a hard capacity and explicit backpressure.

    ``offer`` refuses (returns False) instead of growing past
    *capacity* — the producer decides whether to retry, drop, or slow
    down. The service drains it with :meth:`take`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._items: deque[Any] = deque()
        #: Offers refused because the queue was full.
        self.refusals = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, item: Any) -> bool:
        """Enqueue *item*, or return False (backpressure) when full."""
        if self.full:
            self.refusals += 1
            return False
        self._items.append(item)
        return True

    def take(self) -> Any | None:
        """Dequeue the oldest item, or None when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def peek(self) -> Any | None:
        """The oldest item without dequeuing it, or None when empty."""
        if not self._items:
            return None
        return self._items[0]

    def __iter__(self):
        """Iterate oldest-to-newest without consuming (deadline scans)."""
        return iter(self._items)
