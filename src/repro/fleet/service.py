"""The fleet contention service: sharded, multi-tenant, never raising.

:class:`FleetService` promotes the per-call contention predictor into a
long-running placement service, and its contract is a robustness
contract:

* **Admission first.** Every event is validated and quota-checked
  (:mod:`repro.fleet.admission`) before anything else sees it; every
  query spends a token from its tenant's bucket.
* **Write-ahead log.** An admitted event is appended durably to the
  :class:`~repro.experiments.journal.EventLog` *before* it touches the
  registry or a shard, so a crash at any instant loses at most the
  event in flight and a shard can always be rebuilt bit-identically by
  replay (:meth:`FleetService.recover`).
* **Load shedding, not load failing.** A query over quota is *shed*:
  answered from the registry's O(1) analytic aggregates
  (``p + 1``, ``1 + Σ f_k`` — :mod:`repro.reliability.degrade`),
  tagged ANALYTIC, counted in ``fleet.shed``. The bounded event queue
  refuses (``submit`` → False) instead of growing. Nothing in the
  query or event path raises on overload.
* **Quarantine and gated re-admission.** A shard that corrupts its
  stream sync (a :class:`~repro.errors.ModelError` out of ``apply``)
  is quarantined immediately; one that blows its deadline repeatedly
  is quarantined when its :class:`~repro.reliability.breaker.CircuitBreaker`
  trips. Quarantined machines keep answering — analytically — while
  the breaker gates rebuild attempts, and a spent breaker budget means
  the shard is analytic forever rather than flapping.

All ``fleet.*`` counters and gauges flow through the ambient
:mod:`repro.obs.context`, so a traced run accounts every admitted,
shed, rejected and quarantined request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from ..core.batch import PlacementGrid
from ..core.params import DelayTable, SizedDelayTable
from ..errors import ModelError, RecoveryError
from ..obs import context as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle: experiments imports fleet
    from ..experiments.journal import EventLog
from ..reliability.breaker import CircuitBreaker
from ..reliability.degrade import Confidence
from .admission import AdmissionController, BoundedQueue
from .registry import AppRecord, FleetRegistry
from .shard import (
    ArrayShard,
    ReplayCheckpoint,
    ReplayResult,
    Shard,
    ShardPolicy,
    replay_stream,
    stream_step,
)

__all__ = ["PlacementQuery", "PlacementAnswer", "FleetService"]


@dataclass(frozen=True)
class PlacementQuery:
    """One task asking the fleet where to run.

    The dedicated-mode costs mirror
    :func:`~repro.core.batch.placement_grid`; *candidates* restricts the
    scored machines (None scores the whole fleet).
    """

    dcomp_frontend: float
    backend_dcomp: float = 0.0
    backend_didle: float = 0.0
    backend_dserial: float = 0.0
    dcomm_out: float = 0.0
    dcomm_in: float = 0.0
    candidates: tuple[int, ...] | None = None

    @cached_property
    def _scalars(self) -> tuple[np.float64, ...]:
        """The six dedicated costs as validated float64s, cached.

        A query object is immutable, so the nonnegativity checks
        :func:`~repro.core.batch.placement_grid` would re-run on every
        call are paid once per object here (same messages, same
        exception type, same field order; NaN passes, as in
        ``check_nonnegative``). At fleet query rates the repeated
        scalar coercion and validation is a measurable slice of the
        per-query budget.
        """
        out = []
        for name, value in (
            ("dcomp", self.dcomp_frontend),
            ("dcomp", self.backend_dcomp),
            ("didle", self.backend_didle),
            ("dserial", self.backend_dserial),
            ("dcomm", self.dcomm_out),
            ("dcomm", self.dcomm_in),
        ):
            coerced = np.float64(value)
            if coerced < 0:
                raise ValueError(f"{name} must be >= 0, got {float(coerced)!r}")
            out.append(coerced)
        return tuple(out)

    @cached_property
    def _candidate_ids(self) -> np.ndarray | None:
        """Candidate tuple as an int64 array, coerced once per object."""
        if self.candidates is None:
            return None
        return np.asarray(self.candidates, dtype=np.int64)


@dataclass(frozen=True)
class PlacementAnswer:
    """The fleet's verdict: best machine, predicted time, provenance."""

    machine: int
    best_time: float
    offload: bool
    confidence: Confidence
    shed: bool = False


class FleetService:
    """Sharded contention-placement service over *machines* machines.

    Parameters
    ----------
    machines:
        Fleet size; machine ids are ``0..machines-1`` and machine ``m``
        lives on shard ``m % num_shards``.
    num_shards:
        Shard count (each shard holds one
        :class:`~repro.core.runtime.SlowdownManager` per machine).
    delay_comp, delay_comm, delay_comm_sized:
        Calibrated delay tables shared fleet-wide; ``None`` runs the
        whole fleet on the analytic fallback.
    admission:
        Tenant quotas and metering; defaults to
        :class:`AdmissionController` with its default quota.
    policy:
        Per-shard containment parameters (:class:`ShardPolicy`).
    log:
        Write-ahead :class:`~repro.experiments.journal.EventLog`.
        ``None`` disables durability (recovery degrades to a
        registry-based rebuild that is *not* bit-identical).
    queue_capacity:
        Bound on the event queue; :meth:`submit` refuses beyond it.
    clock:
        Monotonic time source shared with breakers and buckets.
    """

    def __init__(
        self,
        machines: int,
        num_shards: int = 4,
        delay_comp: DelayTable | None = None,
        delay_comm: DelayTable | None = None,
        delay_comm_sized: SizedDelayTable | None = None,
        admission: AdmissionController | None = None,
        policy: ShardPolicy | None = None,
        log: EventLog | None = None,
        queue_capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines!r}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards!r}")
        self.machines = int(machines)
        self.num_shards = min(int(num_shards), self.machines)
        self.policy = policy if policy is not None else ShardPolicy()
        self.admission = (
            admission if admission is not None else AdmissionController(clock=clock)
        )
        self.log = log
        self._clock = clock
        self.registry = FleetRegistry(self.machines)
        self.queue = BoundedQueue(queue_capacity)
        # Struct-of-arrays backend: one ArrayShard per slice. The
        # object-backed Shard remains the differential oracle; both
        # answer (and hash) bit-identically.
        self.shards: list[ArrayShard | Shard] = [
            ArrayShard(
                sid,
                range(sid, self.machines, self.num_shards),
                delay_comp,
                delay_comm,
                delay_comm_sized,
            )
            for sid in range(self.num_shards)
        ]
        self.breakers: list[CircuitBreaker] = [
            CircuitBreaker(
                failure_threshold=self.policy.failure_threshold,
                recovery_time=self.policy.recovery_time,
                budget=self.policy.budget,
                clock=clock,
            )
            for _ in range(self.num_shards)
        ]
        self.quarantined: set[int] = set()
        # Per-shard stream accounting for recovery verification: how
        # many admitted events each shard's slice has seen and the
        # rolling hash chain over them (:func:`~repro.fleet.shard
        # .stream_step`). A journal replay must land on exactly this
        # (count, chain) pair before a rebuilt shard is re-admitted.
        self._stream_count: list[int] = [0] * self.num_shards
        self._stream_chain: list[bytes] = [b""] * self.num_shards
        # Checkpoint taken at quarantine time when the shard's state
        # was still trusted (deadline blowouts, not desyncs): the
        # replay must reproduce this state_hash mid-stream too.
        self._pre_quarantine: dict[int, ReplayCheckpoint | None] = {}
        #: The structured error from the last failed rebuild, if any.
        self.last_recovery_error: RecoveryError | None = None
        # Fleet-wide memoized slowdown vectors: the served-query path
        # gathers candidates by fancy indexing instead of looping in
        # Python (the difference between ~9k and ~15k queries/sec at
        # fleet scale). ``_stale`` holds machines whose entry must be
        # re-derived from their shard first; an untouched machine is
        # calibrated unity, matching :meth:`Shard.slowdowns`.
        self._comp = np.ones(self.machines)
        self._comm = np.ones(self.machines)
        self._conf = np.full(self.machines, int(Confidence.CALIBRATED), dtype=np.int64)
        self._stale: set[int] = set()
        # Request accounting — the overload proof reads these.
        self.admitted_events = 0
        self.rejected_events = 0
        self.served_queries = 0
        self.shed_queries = 0
        self.degraded_queries = 0
        self.quarantines = 0
        self.rebuilds = 0
        self.recovery_mismatches = 0

    # -- routing --------------------------------------------------------------

    def shard_of(self, machine: int) -> int:
        """The shard id owning *machine*."""
        return machine % self.num_shards

    # -- event feed -----------------------------------------------------------

    def submit(self, event: Mapping[str, Any]) -> bool:
        """Enqueue one event; False is backpressure (queue full)."""
        accepted = self.queue.offer(dict(event))
        if not accepted:
            _obs.inc("fleet.backpressure")
        _obs.set_gauge("fleet.queue_depth", float(len(self.queue)))
        return accepted

    def pump(self, max_events: int | None = None) -> int:
        """Drain up to *max_events* queued events; return the count applied."""
        applied = 0
        while max_events is None or applied < max_events:
            event = self.queue.take()
            if event is None:
                break
            self.apply(event)
            applied += 1
        _obs.set_gauge("fleet.queue_depth", float(len(self.queue)))
        return applied

    def _validated(self, event: Mapping[str, Any]) -> dict[str, Any] | None:
        """Admission-check *event*; None rejects (counted, never raises)."""
        op = event.get("op")
        if op == "arrive":
            name = event.get("app")
            tenant = str(event.get("tenant", ""))
            machine = event.get("machine")
            if (
                not name
                or name in self.registry
                or not isinstance(machine, int)
                or not 0 <= machine < self.machines
            ):
                return None
            if not self.admission.admit_app(tenant, self.registry.tenant_count(tenant)):
                _obs.inc("fleet.quota_rejections")
                return None
            try:
                frac = float(event["comm_fraction"])
                size = float(event.get("message_size", 0.0))
                record = AppRecord(str(name), tenant, machine, frac, size)
                record.profile()  # profile validation (fractions, sizes)
            except (KeyError, TypeError, ValueError, ModelError):
                return None
            return {
                "op": "arrive",
                "app": record.name,
                "tenant": record.tenant,
                "machine": record.machine,
                "comm_fraction": record.comm_fraction,
                "message_size": record.message_size,
            }
        if op == "depart":
            record = self.registry.get(str(event.get("app", "")))
            if record is None:
                return None
            # Enriched from the registry so a bare depart replays
            # self-contained.
            return {
                "op": "depart",
                "app": record.name,
                "tenant": record.tenant,
                "machine": record.machine,
                "comm_fraction": record.comm_fraction,
                "message_size": record.message_size,
            }
        return None

    def apply(self, event: Mapping[str, Any]) -> bool:
        """Validate, log, and apply one event. Never raises.

        Write-ahead discipline: the event reaches the durable log
        before the registry or any shard, so replay always covers
        whatever the live structures saw.
        """
        validated = self._validated(event)
        if validated is None:
            self.rejected_events += 1
            _obs.inc("fleet.rejected")
            return False
        if self.log is not None:
            validated = self.log.append(validated)
        record = AppRecord(
            validated["app"],
            validated["tenant"],
            validated["machine"],
            validated["comm_fraction"],
            validated["message_size"],
        )
        if validated["op"] == "arrive":
            self.registry.add(record)
        else:
            self.registry.remove(record.name)
        self.admitted_events += 1
        _obs.inc("fleet.admitted")
        _obs.set_gauge("fleet.registered", float(len(self.registry)))
        sid = self.shard_of(record.machine)
        # Stream accounting advances for every admitted event — even
        # ones a quarantined shard never sees — because it describes
        # the durable stream a rebuild must reproduce, not the shard.
        self._stream_count[sid] += 1
        self._stream_chain[sid] = stream_step(self._stream_chain[sid], validated)
        if not self._shard_accepts(sid):
            # The shard catches up from the log at recovery time.
            return True
        self._shard_apply(sid, validated)
        return True

    # -- shard backend seam ----------------------------------------------------
    #
    # Everything the service needs from a shard funnels through these
    # five hooks, so the supervised subclass
    # (:class:`repro.fleet.supervisor.SupervisedFleetService`) can move
    # shards into worker processes without touching the admission, log,
    # registry, or query logic above.

    def _shard_accepts(self, sid: int) -> bool:
        """May shard *sid* receive this event right now?"""
        return sid not in self.quarantined

    def _shard_apply(self, sid: int, validated: dict[str, Any]) -> None:
        """Apply one validated, logged event to shard *sid*."""
        shard = self.shards[sid]
        started = self._clock()
        try:
            shard.apply(validated)
        except ModelError:
            # The shard missed a logged event: its state no longer
            # matches the stream — quarantine immediately.
            self.breakers[sid].record_failure()
            self._quarantine(sid, "stream desync")
            return
        self._stale.add(validated["machine"])
        if self._clock() - started > self.policy.deadline:
            # Deadline blowout: state is intact but the shard is too
            # slow to keep up; quarantine once the breaker trips.
            self.breakers[sid].record_failure()
            _obs.inc("fleet.deadline_blowouts")
            if self.breakers[sid].state != "closed":
                self._quarantine(sid, "deadline blowout", state_trusted=True)
        else:
            self.breakers[sid].record_success()

    def _shard_slowdowns(
        self, sid: int, machines: Sequence[int]
    ) -> dict[int, tuple[float, float, Confidence]] | None:
        """Tagged slowdowns for *machines* of shard *sid*; None keeps them stale."""
        return self.shards[sid].slowdowns_batch(machines)

    def _shard_state_hash(self, sid: int) -> str:
        """Shard *sid*'s state fingerprint (see :meth:`Shard.state_hash`)."""
        return self.shards[sid].state_hash()

    def _note_failover(self, count: int) -> None:
        """Hook: *count* candidates were answered from registry aggregates."""

    def _quarantine(self, sid: int, reason: str, state_trusted: bool = False) -> None:
        if sid in self.quarantined:
            return
        self.quarantined.add(sid)
        self._pre_quarantine[sid] = self._recovery_checkpoint(sid, state_trusted)
        self.quarantines += 1
        _obs.inc("fleet.quarantines")
        _obs.set_gauge("fleet.quarantined_shards", float(len(self.quarantined)))

    def _recovery_checkpoint(
        self, sid: int, state_trusted: bool
    ) -> ReplayCheckpoint | None:
        """Fingerprint the shard's last known-good state, if there is one.

        A desync quarantine means the shard's state already diverged
        from the stream, so there is nothing trustworthy to pin; the
        rebuild is then verified against the stream chain alone.
        """
        if not state_trusted:
            return None
        return ReplayCheckpoint(
            self._stream_count[sid], self.shards[sid].state_hash()
        )

    # -- recovery -------------------------------------------------------------

    def recover(self, sid: int) -> bool:
        """Attempt to rebuild quarantined shard *sid* and re-admit it.

        Gated by the shard's breaker: before ``recovery_time`` has
        passed (or after the rebuild budget is spent) the attempt is
        rejected outright. With an event log the rebuild replays the
        durable stream through a fresh shard — bit-identical to a shard
        that never failed — and is **verified** before re-admission:
        the replayed event count and rolling stream hash must match the
        service's live accounting, and when a trusted pre-quarantine
        checkpoint exists the rebuilt ``state_hash`` must reproduce it
        mid-stream. A mismatch (e.g. a corrupted journal line silently
        truncating the replay) surfaces as a
        :class:`~repro.errors.RecoveryError` in
        :attr:`last_recovery_error` plus the ``recovery_mismatches``
        counter, and the shard *stays quarantined*. Without a log the
        rebuild falls back to re-arriving the registry's live records,
        which recovers the *population* but not the departed
        applications' numerical history (and cannot be verified).
        """
        if sid not in self.quarantined:
            return True
        breaker = self.breakers[sid]
        if not breaker.allow():
            return False
        shard = self.shards[sid]
        try:
            from ..experiments.journal import EventLog

            rebuilt = shard.fresh()
            if self.log is not None:
                result = replay_stream(
                    rebuilt,
                    EventLog.replay(self.log.path),
                    checkpoint=self._pre_quarantine.get(sid),
                )
                error = self._verify_rebuild(sid, result)
                if error is not None:
                    self._note_recovery_mismatch(error)
                    breaker.record_failure()
                    return False
            else:
                for record in self.registry.on_machines(list(shard.machine_ids)):
                    rebuilt.apply(
                        {
                            "op": "arrive",
                            "app": record.name,
                            "tenant": record.tenant,
                            "machine": record.machine,
                            "comm_fraction": record.comm_fraction,
                            "message_size": record.message_size,
                        }
                    )
        except ModelError as exc:
            self._note_recovery_mismatch(
                RecoveryError(
                    f"shard {sid} rebuild could not apply the journal: {exc}",
                    shard_id=sid,
                    expected_events=self._stream_count[sid],
                )
            )
            breaker.record_failure()
            return False
        breaker.record_success()
        self.shards[sid] = rebuilt
        self.quarantined.discard(sid)
        self._pre_quarantine.pop(sid, None)
        self.last_recovery_error = None
        self._stale.update(rebuilt.machine_ids)
        self.rebuilds += 1
        _obs.inc("fleet.rebuilds")
        _obs.set_gauge("fleet.quarantined_shards", float(len(self.quarantined)))
        return True

    def _verify_rebuild(self, sid: int, result: ReplayResult) -> RecoveryError | None:
        """Check a journal replay against the live stream accounting."""
        expected = self._stream_count[sid]
        if not result.checkpoint_ok:
            return RecoveryError(
                f"shard {sid} rebuild missed its pre-quarantine checkpoint: "
                f"{result.detail}",
                shard_id=sid,
                expected_events=expected,
                replayed_events=result.count,
            )
        if result.count != expected or result.chain != self._stream_chain[sid]:
            return RecoveryError(
                f"shard {sid} rebuild replayed {result.count} event(s) where the "
                f"service admitted {expected} (journal truncated, corrupted, or "
                f"reordered)",
                shard_id=sid,
                expected_events=expected,
                replayed_events=result.count,
            )
        return None

    def _note_recovery_mismatch(self, error: RecoveryError) -> None:
        self.last_recovery_error = error
        self.recovery_mismatches += 1
        _obs.inc("fleet.recovery_mismatches")

    # -- queries --------------------------------------------------------------

    def _analytic_slowdowns(
        self, candidates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Registry-aggregate analytic ``(comp, comm)`` per candidate.

        ``p + 1`` and ``1 + Σ f_k`` straight from the O(1) per-machine
        aggregates — no shard state touched, so this path works during
        overload and against quarantined shards alike.
        """
        counts = self.registry.machine_counts[candidates]
        sums = self.registry.machine_comm_sums[candidates]
        return counts + 1.0, 1.0 + np.maximum(sums, 0.0)

    def _refresh(self) -> None:
        """Pull stale machines' slowdowns from their shards into the vectors.

        Machines owned by quarantined shards stay stale — their shard
        state is untrusted; they are re-derived after recovery (which
        re-marks the whole shard) and served analytically until then.
        """
        if not self._stale:
            return
        by_sid: dict[int, list[int]] = {}
        for machine in self._stale:
            by_sid.setdefault(machine % self.num_shards, []).append(machine)
        refreshed: list[int] = []
        for sid, machines in by_sid.items():
            if sid in self.quarantined:
                continue
            slowdowns = self._shard_slowdowns(sid, machines)
            if slowdowns is None:
                # Backend could not answer (e.g. a worker mid-replay);
                # the machines stay stale and serve their memoized (or
                # analytic-overlay) values until it can.
                continue
            for machine, (comp, comm, tag) in slowdowns.items():
                self._comp[machine] = comp
                self._comm[machine] = comm
                self._conf[machine] = int(tag)
                refreshed.append(machine)
        self._stale.difference_update(refreshed)

    def _candidate_array(self, query: PlacementQuery) -> np.ndarray:
        cands = query._candidate_ids
        if cands is None:
            return np.arange(self.machines)
        return cands[(cands >= 0) & (cands < self.machines)]

    def query(self, tenant: str, query: PlacementQuery) -> PlacementAnswer:
        """Answer one placement query. Never raises on overload.

        Over-quota tenants get the shed path: ANALYTIC-confidence
        slowdowns from the registry aggregates. Admitted queries read
        each candidate's memoized shard slowdowns, with quarantined
        shards' machines served analytically. Either way the candidate
        grid is scored with the exact arithmetic of
        :func:`~repro.core.batch.placement_grid` (inlined — see below)
        and the best machine (minimum predicted elapsed time) is
        returned.
        """
        candidates = self._candidate_array(query)
        if candidates.size == 0:
            candidates = np.arange(self.machines)
        shed = not self.admission.admit_query(tenant)
        if shed:
            self.shed_queries += 1
            _obs.inc("fleet.shed")
            comp, comm = self._analytic_slowdowns(candidates)
            conf = np.full(candidates.size, int(Confidence.ANALYTIC))
        else:
            self.served_queries += 1
            _obs.inc("fleet.served")
            self._refresh()
            # Fancy indexing copies, so the quarantine overlay below
            # never writes through to the fleet-wide vectors.
            comp = self._comp[candidates]
            comm = self._comm[candidates]
            conf = self._conf[candidates]
            if self.quarantined:
                mask = np.isin(candidates % self.num_shards, list(self.quarantined))
                if mask.any():
                    acomp, acomm = self._analytic_slowdowns(candidates[mask])
                    comp[mask] = acomp
                    comm[mask] = acomm
                    conf[mask] = int(Confidence.ANALYTIC)
                    self.degraded_queries += 1
                    _obs.inc("fleet.degraded")
                    self._note_failover(int(mask.sum()))
        # Inlined placement_grid: the slowdown arrays are the service's
        # own memoized state (always >= 1 by construction) and the
        # query's scalars are validated once in ``_scalars``, so the
        # kernel's per-call re-validation is skipped. The arithmetic —
        # operands, operation order — is exactly ``frontend_times`` /
        # ``backend_times`` / ``comm_costs`` with ``serial = comp``,
        # which keeps answers bit-identical to the shared kernels
        # (pinned by tests/fleet/test_service.py).
        dfe, dbc, dbi, dbs, dco, dci = query._scalars
        grid = PlacementGrid(
            t_frontend=dfe * comp,
            t_backend=np.maximum(dbc + dbi, dbs * comp),
            c_out=dco * comm,
            c_in=dci * comm,
            confidence=Confidence(int(conf.min())),
        )
        best = int(np.argmin(grid.best_time))
        return PlacementAnswer(
            machine=int(candidates[best]),
            best_time=float(grid.best_time[best]),
            offload=bool(grid.offload[best]),
            confidence=Confidence(int(conf[best])),
            shed=shed,
        )

    # -- introspection --------------------------------------------------------

    def state_hash(self) -> str:
        """Concatenated shard fingerprints (shard order) — recovery oracle."""
        return "-".join(
            self._shard_state_hash(sid) for sid in range(self.num_shards)
        )

    def counters(self) -> dict[str, int]:
        """Plain-dict snapshot of the request accounting."""
        return {
            "admitted_events": self.admitted_events,
            "rejected_events": self.rejected_events,
            "served_queries": self.served_queries,
            "shed_queries": self.shed_queries,
            "degraded_queries": self.degraded_queries,
            "quarantines": self.quarantines,
            "rebuilds": self.rebuilds,
            "recovery_mismatches": self.recovery_mismatches,
            "backpressure_refusals": self.queue.refusals,
            "registered": len(self.registry),
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources. A no-op for the in-process service."""

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
