"""Supervision tree: shard workers, heartbeats, failover, respawn.

:class:`SupervisedFleetService` is the :class:`~repro.fleet.service
.FleetService` with every shard moved into its own worker process
(:mod:`repro.fleet.worker`). The service keeps its whole robustness
contract — admission first, write-ahead log, shedding over failing —
and adds a supervision tree over the workers:

* **Heartbeats and request deadlines.** Every in-flight request
  carries a deadline (reusing
  :class:`~repro.parallel.containment.FailurePolicy` for the apply
  path); idle workers are pinged on ``heartbeat_interval`` and a pong
  overdue past ``heartbeat_timeout`` is a missed heartbeat. Either
  way the worker is failed: killed, quarantined (through the shard's
  :class:`~repro.reliability.breaker.CircuitBreaker`), and respawned
  when the breaker re-admits an attempt.
* **Journal-backed respawn.** A respawned worker replays the durable
  :class:`~repro.experiments.journal.EventLog` in catch-up rounds: a
  first round up to the sequence number current at respawn time, then
  shrinking delta rounds over whatever the feed logged while the
  previous round ran, until a verified round leaves nothing uncovered.
  Each round reports the cumulative replayed count, the rolling stream
  chain, and whether it reproduced the pre-quarantine checkpoint (the
  last heartbeat's ``(applied, state_hash)``). Only a bit-identical
  rebuild is re-admitted; anything else surfaces as a
  :class:`~repro.errors.RecoveryError` and the shard stays
  quarantined. While a worker replays, its slice receives no applies —
  the journal covers them — so a long replay cannot trip its own
  backpressure.
* **Failover answers.** While a shard is dead or replaying, queries
  touching its machines are answered from the registry's analytic
  aggregates (``p + 1``, ``1 + Σ f_k``) at ANALYTIC confidence —
  ``query()`` never blocks on a dead worker.
* **Cross-process backpressure.** Each worker has a bounded in-flight
  window (a :class:`~repro.fleet.admission.BoundedQueue` of pending
  acknowledgements). A full window first gets a short soft wait (the
  parent yields so a merely-busy worker can drain), then the worker is
  failed: its load is shed to the analytic path and the journal replay
  catches it up later, instead of one slow worker stalling the event
  feed for its siblings.
* **Batched frames.** Admitted events are coalesced per shard into
  bounded ``("apply", [events])`` frames (``SupervisorPolicy
  .batch_size``), acknowledged once per frame. Partial frames flush on
  every sweep and before any request whose answer must observe them —
  slowdowns, state hash, chaos injection — so acks, heartbeat
  checkpoints, stream accounting and replay verification all operate
  on frame boundaries and the respawn machinery is unchanged.

The supervisor is single-threaded: all of the above happens inside
:meth:`SupervisedFleetService.tick`, which runs (rate-limited by
``tick_interval``) at the top of every ``apply()`` and ``query()`` and
can be driven explicitly (``tick(force=True)``,
:meth:`await_recovery`). No background threads, no signals — the same
deterministic, inspectable control flow as the rest of the package.

Timing note: deadlines compare the injected service clock against
itself, but ticks happen only when the service is entered, so wall
clocks (the default) are the intended configuration; the in-process
:class:`~repro.fleet.service.FleetService` remains the
fake-clock-friendly variant for unit tests.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.params import DelayTable, SizedDelayTable
from ..errors import RecoveryError
from ..obs import context as _obs
from ..parallel.containment import FailurePolicy
from ..reliability.degrade import Confidence
from .admission import AdmissionController
from .service import FleetService, PlacementAnswer, PlacementQuery
from .shard import ReplayCheckpoint, ShardPolicy, replay_stream
from .worker import FAULT_KINDS, PendingRequest, WorkerHandle, WorkerUnavailable

__all__ = ["SupervisorPolicy", "SupervisedFleetService"]

#: Response tag each request kind must be answered with (FIFO pipes
#: make the match positional; anything else is a protocol desync).
_EXPECTED_ACK = {
    "apply": "ok",
    "ping": "pong",
    "replay": "replayed",
    "slowdowns": "slowdowns",
    "hash": "hash",
    "inject": "ok",
    "shutdown": "ok",
}


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision-tree parameters for :class:`SupervisedFleetService`.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between pings to an idle live worker.
    heartbeat_timeout:
        Seconds a ping may stay unanswered before it counts as a
        missed heartbeat (and fails the worker).
    heartbeat_hash:
        Ask for the worker's ``state_hash`` with each ping. The
        ``(applied, hash)`` pair becomes the pre-quarantine checkpoint
        a later replay must reproduce mid-stream; turning it off
        trades that verification depth for cheaper heartbeats.
    max_inflight:
        Per-worker bound on unacknowledged requests (apply *frames*,
        not individual events). Sized so the worst-case backlog stays
        far below the OS pipe buffer — the parent must never block in
        ``send()``.
    batch_size:
        Events coalesced into one ``("apply", [events])`` frame before
        it is sent. 1 keeps the PR-9 one-message-per-event behaviour;
        larger frames amortize pipe round-trips when the feed rate,
        not the shard math, is the bottleneck. Buffered events are
        flushed on every supervision sweep and before any request
        whose answer must reflect them (slowdowns, state hash, chaos
        injection), so acks, stream accounting, heartbeat checkpoints
        and replay all stay on frame boundaries.
    replay_deadline:
        Seconds a respawned worker gets to replay the journal.
    soft_backpressure:
        Seconds the parent will yield to a worker whose in-flight
        window is full before declaring hard backpressure and
        shedding the worker.
    tick_interval:
        Minimum seconds between supervision sweeps; ``apply``/``query``
        entry points tick at most this often.
    containment:
        Reused :class:`~repro.parallel.containment.FailurePolicy`; its
        ``deadline`` is the per-request acknowledgement deadline for
        the apply path.
    """

    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.0
    heartbeat_hash: bool = True
    max_inflight: int = 64
    batch_size: int = 1
    replay_deadline: float = 60.0
    soft_backpressure: float = 0.05
    tick_interval: float = 0.02
    containment: FailurePolicy = field(
        default_factory=lambda: FailurePolicy(deadline=5.0)
    )

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval!r}"
            )
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0, got {self.heartbeat_timeout!r}"
            )
        if self.max_inflight < 2:
            raise ValueError(f"max_inflight must be >= 2, got {self.max_inflight!r}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size!r}")
        if self.replay_deadline <= 0:
            raise ValueError(
                f"replay_deadline must be > 0, got {self.replay_deadline!r}"
            )
        if self.soft_backpressure < 0:
            raise ValueError(
                f"soft_backpressure must be >= 0, got {self.soft_backpressure!r}"
            )
        if self.tick_interval < 0:
            raise ValueError(f"tick_interval must be >= 0, got {self.tick_interval!r}")
        if self.containment.deadline is None:
            raise ValueError("containment.deadline must be set (request deadline)")


class SupervisedFleetService(FleetService):
    """:class:`FleetService` with per-shard worker processes.

    Accepts every :class:`FleetService` parameter (``log`` becomes
    mandatory — respawn *is* journal replay, there is no supervised
    mode without durability) plus the supervision policy and an
    optional multiprocessing start method (defaults to ``fork`` where
    available).

    The public surface is unchanged: ``submit``/``pump``/``apply``,
    ``query``, ``state_hash``, ``counters``. Added: :meth:`tick`,
    :meth:`await_recovery`, :meth:`inject_fault` (chaos hook) and the
    per-worker introspection helpers. Use as a context manager or call
    :meth:`close` to reap the workers.
    """

    def __init__(
        self,
        machines: int,
        num_shards: int = 4,
        delay_comp: DelayTable | None = None,
        delay_comm: DelayTable | None = None,
        delay_comm_sized: SizedDelayTable | None = None,
        admission: AdmissionController | None = None,
        policy: ShardPolicy | None = None,
        log: Any = None,
        queue_capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        supervisor: SupervisorPolicy | None = None,
        start_method: str | None = None,
    ) -> None:
        if log is None:
            raise ValueError(
                "SupervisedFleetService requires a durable EventLog: worker "
                "respawn replays the journal, so there is no supervised mode "
                "without one"
            )
        super().__init__(
            machines,
            num_shards,
            delay_comp,
            delay_comm,
            delay_comm_sized,
            admission,
            policy,
            log,
            queue_capacity,
            clock,
        )
        self.supervisor = supervisor if supervisor is not None else SupervisorPolicy()
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._last_tick = float("-inf")
        # Last clean heartbeat fingerprint per shard: the replay
        # checkpoint a respawn must reproduce (None after a desync).
        self._checkpoints: dict[int, ReplayCheckpoint | None] = {}
        # Supervisor accounting — the chaos proof reads these.
        self.heartbeats_missed = 0
        self.respawns = 0
        self.replay_events = 0
        self.failover_answers = 0
        self.worker_failures = 0
        self.worker_backpressure = 0
        # Per-shard frame buffers: validated events waiting to be
        # coalesced into one ("apply", [events]) pipe message.
        self._frames: list[list[dict[str, Any]]] = [
            [] for _ in range(self.num_shards)
        ]
        now = self._clock()
        self._workers: list[WorkerHandle] = [
            self._spawn(sid, now) for sid in range(self.num_shards)
        ]

    # -- worker lifecycle ------------------------------------------------------

    def _spawn(self, sid: int, now: float) -> WorkerHandle:
        shard = self.shards[sid]
        return WorkerHandle(
            self._ctx,
            sid,
            shard.machine_ids,
            shard._tables,
            str(self.log.path),
            self.supervisor.max_inflight,
            now,
        )

    def _fail_worker(self, sid: int, reason: str) -> None:
        """Kill worker *sid*, trip its breaker, quarantine its shard."""
        worker = self._workers[sid]
        if worker.state == WorkerHandle.DEAD:
            return
        # Buffered events are already durable in the journal; the
        # respawn replay covers them.
        self._frames[sid].clear()
        worker.kill()
        worker.state = WorkerHandle.DEAD
        self.worker_failures += 1
        _obs.inc("fleet.worker_failures")
        self.breakers[sid].record_failure()
        self._quarantine(sid, reason)

    def _maybe_respawn(self, sid: int, now: float) -> None:
        """Breaker-gated respawn: fresh worker, journal replay, verify."""
        if self.log is None:
            # The soak's resume window detaches the log while it
            # replays history through apply(); respawn must wait for
            # the durable stream to be reattached.
            return
        if not self.breakers[sid].allow():
            return
        handle = self._spawn(sid, now)
        checkpoint = self._pre_quarantine.get(sid)
        raw_checkpoint = (
            (checkpoint.count, checkpoint.state_hash) if checkpoint else None
        )
        # Snapshot the stream accounting *at send time*: events logged
        # while the replay runs are outside its scope — they are picked
        # up by catch-up rounds (:meth:`_finish_replay`).
        meta = (
            self._stream_count[sid],
            self._stream_chain[sid],
            self.log.next_seq,
        )
        try:
            handle.request(
                ("replay", 0, self.log.next_seq, raw_checkpoint),
                "replay",
                self.supervisor.replay_deadline,
                now,
                meta=meta,
            )
        except WorkerUnavailable:
            handle.kill()
            self.breakers[sid].record_failure()
            return
        handle.state = WorkerHandle.REPLAYING
        self._workers[sid] = handle
        self.respawns += 1
        _obs.inc("fleet.respawns")

    def _finish_replay(
        self,
        sid: int,
        meta: tuple[int, bytes, int],
        count: int,
        chain_hex: str,
        checkpoint_ok: bool,
        detail: str | None,
    ) -> None:
        """Verify one replay round; catch up, re-admit, or stay quarantined.

        *meta* is the stream accounting snapshot taken when the round
        was sent: ``(owned events admitted, rolling chain, log seq the
        round covers up to)``. The worker's reported count and chain
        are cumulative across rounds, so each round verifies against
        its own snapshot. Events logged while the round ran are outside
        its scope — a shrinking delta round covers them, and only when
        a verified round leaves nothing uncovered does the worker go
        live. The deltas converge geometrically: replaying a batch is
        far cheaper than admitting (validating, logging, fanning out)
        the same batch was.
        """
        expected_count, expected_chain, upto_sent = meta
        worker = self._workers[sid]
        error: RecoveryError | None = None
        if not checkpoint_ok:
            error = RecoveryError(
                f"shard {sid} respawn missed its pre-quarantine checkpoint: "
                f"{detail}",
                shard_id=sid,
                expected_events=expected_count,
                replayed_events=max(count, 0),
            )
        elif count != expected_count or bytes.fromhex(chain_hex) != expected_chain:
            error = RecoveryError(
                f"shard {sid} respawn replayed {count} event(s) where the "
                f"service admitted {expected_count} (journal truncated, "
                f"corrupted, or reordered)",
                shard_id=sid,
                expected_events=expected_count,
                replayed_events=max(count, 0),
            )
        if error is not None:
            self._note_recovery_mismatch(error)
            self._fail_worker(sid, "recovery verification failed")
            return
        # The worker reports cumulative counts; charge only this
        # round's delta to the counter.
        round_events = count - worker.replayed
        worker.replayed = count
        self.replay_events += round_events
        _obs.inc("fleet.replay_events", round_events)
        now = self._clock()
        if self.log is not None and self.log.next_seq > upto_sent:
            # Verified, but the feed moved on while the round ran:
            # send the delta round before re-admitting.
            next_meta = (
                self._stream_count[sid],
                self._stream_chain[sid],
                self.log.next_seq,
            )
            try:
                sent = worker.request(
                    ("replay", upto_sent, self.log.next_seq, None),
                    "replay",
                    self.supervisor.replay_deadline,
                    now,
                    meta=next_meta,
                )
            except WorkerUnavailable:
                sent = False
            if not sent:
                self._fail_worker(sid, "catch-up replay round could not be sent")
            return
        worker.state = WorkerHandle.LIVE
        worker.last_ping = now
        self.breakers[sid].record_success()
        self.quarantined.discard(sid)
        self._pre_quarantine.pop(sid, None)
        self.last_recovery_error = None
        self._stale.update(self.shards[sid].machine_ids)
        self.rebuilds += 1
        _obs.inc("fleet.rebuilds")
        _obs.set_gauge("fleet.quarantined_shards", float(len(self.quarantined)))

    # -- acknowledgement plumbing ----------------------------------------------

    def _handle_ack(self, sid: int, entry: PendingRequest, response: tuple) -> None:
        tag = response[0]
        if tag == "err" and entry.kind == "apply":
            # The worker rejected a logged event: its state no longer
            # matches the stream, and neither does its last heartbeat
            # fingerprint — drop the checkpoint and fail it.
            self._checkpoints[sid] = None
            self._fail_worker(sid, f"stream desync in worker: {response[1]}")
            return
        if _EXPECTED_ACK.get(entry.kind) != tag:
            self._fail_worker(
                sid, f"protocol desync: {entry.kind!r} answered {tag!r}"
            )
            return
        if tag == "pong":
            applied, digest = response[1], response[2]
            if digest is not None:
                self._checkpoints[sid] = ReplayCheckpoint(int(applied), digest)
        elif tag == "replayed":
            self._finish_replay(
                sid, entry.meta, response[1], response[2], response[3], response[4]
            )

    def _drain(self, sid: int) -> None:
        """Process every ready acknowledgement from worker *sid*."""
        worker = self._workers[sid]
        while worker.state != WorkerHandle.DEAD:
            try:
                ack = worker.poll_ack()
            except WorkerUnavailable:
                self._fail_worker(sid, "pipe to worker closed")
                return
            if ack is None:
                return
            self._handle_ack(sid, *ack)

    def _await_ack(self, sid: int, kind: str, timeout: float) -> tuple | None:
        """Drain acks (FIFO) until the one for *kind* arrives, or time out."""
        worker = self._workers[sid]
        end = self._clock() + timeout
        while worker.state != WorkerHandle.DEAD:
            remaining = end - self._clock()
            if remaining <= 0:
                self._fail_worker(sid, f"{kind} deadline exceeded")
                return None
            try:
                ack = worker.wait_ack(remaining, self._clock)
            except WorkerUnavailable:
                self._fail_worker(sid, "pipe to worker closed")
                return None
            if ack is None:
                continue
            entry, response = ack
            self._handle_ack(sid, entry, response)
            if entry.kind == kind:
                return response
        return None

    def _expired(self, worker: WorkerHandle, now: float) -> PendingRequest | None:
        if worker.state == WorkerHandle.REPLAYING:
            # A replaying worker holds exactly its replay-round request
            # (applies are withheld until it goes live); only the head
            # deadline is meaningful.
            head = worker.oldest()
            if (
                head is not None
                and head.deadline is not None
                and now - head.sent_at > head.deadline
            ):
                return head
            return None
        for entry in worker.pending:
            if entry.deadline is not None and now - entry.sent_at > entry.deadline:
                return entry
        return None

    # -- the supervision sweep -------------------------------------------------

    def tick(self, force: bool = False) -> None:
        """One supervision sweep: drain acks, enforce deadlines, ping,
        detect deaths, drive breaker-gated respawns.

        Runs at most every ``tick_interval`` seconds unless *force* —
        ``apply()`` and ``query()`` call it on entry, so a served
        service supervises itself; an idle one can be driven explicitly
        (:meth:`await_recovery` does).
        """
        now = self._clock()
        if not force and now - self._last_tick < self.supervisor.tick_interval:
            return
        self._last_tick = now
        policy = self.supervisor
        for sid in range(self.num_shards):
            worker = self._workers[sid]
            if worker.state == WorkerHandle.DEAD:
                self._maybe_respawn(sid, now)
                continue
            self._drain(sid)
            worker = self._workers[sid]
            if worker.state == WorkerHandle.DEAD:
                continue
            if not worker.alive():
                self._fail_worker(sid, "worker process died")
                continue
            expired = self._expired(worker, now)
            if expired is not None:
                if expired.kind == "ping":
                    self.heartbeats_missed += 1
                    _obs.inc("fleet.heartbeats_missed")
                    self._fail_worker(sid, "missed heartbeat")
                else:
                    self._fail_worker(sid, f"{expired.kind} deadline exceeded")
                continue
            if worker.state == WorkerHandle.LIVE and self._frames[sid]:
                # Ship any partial frame each sweep so a slow feed
                # never parks events in the buffer indefinitely.
                self._flush_frame(sid)
                worker = self._workers[sid]
                if worker.state == WorkerHandle.DEAD:
                    continue
            if (
                worker.state == WorkerHandle.LIVE
                and now - worker.last_ping >= policy.heartbeat_interval
            ):
                try:
                    if worker.request(
                        ("ping", policy.heartbeat_hash),
                        "ping",
                        policy.heartbeat_timeout,
                        now,
                    ):
                        worker.last_ping = now
                except WorkerUnavailable:
                    self._fail_worker(sid, "pipe to worker closed")
        _obs.set_gauge(
            "fleet.worker_depth",
            float(sum(len(w.pending) for w in self._workers)),
        )

    # -- shard backend seam (process-backed) -----------------------------------

    def _shard_accepts(self, sid: int) -> bool:
        # Only live workers take events. A replaying worker's slice is
        # covered by the journal: events keep being logged and chained,
        # and the catch-up rounds deliver them — sending applies during
        # a replay would just pile up behind it and trip backpressure.
        return self._workers[sid].state == WorkerHandle.LIVE

    def _shard_apply(self, sid: int, validated: dict[str, Any]) -> None:
        self._drain(sid)
        worker = self._workers[sid]
        if worker.state == WorkerHandle.DEAD:
            return
        # Coalesce into the shard's frame; a full frame ships at once,
        # a partial one on the next supervision sweep or before any
        # request that must observe it.
        self._frames[sid].append(validated)
        self._stale.add(validated["machine"])
        if len(self._frames[sid]) >= self.supervisor.batch_size:
            self._flush_frame(sid)

    def _flush_frame(self, sid: int) -> None:
        """Ship shard *sid*'s buffered events as one apply frame."""
        frame = self._frames[sid]
        if not frame:
            return
        worker = self._workers[sid]
        self._frames[sid] = []
        if worker.state != WorkerHandle.LIVE:
            # Already failed or replaying: the journal covers the
            # buffered events; replay delivers them.
            return
        deadline = self.supervisor.containment.deadline
        try:
            sent = worker.request(("apply", frame), "apply", deadline, self._clock())
            if not sent:
                sent = self._soft_backpressure(sid, frame, deadline)
        except WorkerUnavailable:
            self._fail_worker(sid, "pipe to worker closed")
            return
        if not sent:
            if self._workers[sid].state == WorkerHandle.DEAD:
                return
            # Hard backpressure: the worker cannot keep up even after
            # the soft wait. Shed it — the frame is already durable in
            # the log, and the respawn replay will catch it up —
            # rather than stall the feed for its siblings.
            self.worker_backpressure += 1
            _obs.inc("fleet.worker_backpressure")
            self._fail_worker(sid, "backpressure: in-flight window full")

    def _soft_backpressure(
        self, sid: int, frame: list[dict[str, Any]], deadline: float | None
    ) -> bool:
        """Yield briefly to a worker with a full window; retry the send."""
        worker = self._workers[sid]
        end = self._clock() + self.supervisor.soft_backpressure
        while worker.pending.full and worker.state != WorkerHandle.DEAD:
            remaining = end - self._clock()
            if remaining <= 0:
                return False
            ack = worker.wait_ack(remaining, self._clock)
            if ack is None:
                return False
            self._handle_ack(sid, *ack)
        if worker.state == WorkerHandle.DEAD:
            return False
        return worker.request(("apply", frame), "apply", deadline, self._clock())

    def _shard_slowdowns(
        self, sid: int, machines: Sequence[int]
    ) -> dict[int, tuple[float, float, Confidence]] | None:
        worker = self._workers[sid]
        if worker.state != WorkerHandle.LIVE:
            return None
        # The answer must reflect every admitted event: ship the
        # shard's partial frame first (FIFO keeps it ordered ahead).
        self._flush_frame(sid)
        worker = self._workers[sid]
        if worker.state != WorkerHandle.LIVE:
            return None
        deadline = self.supervisor.containment.deadline or self.supervisor.heartbeat_timeout
        try:
            sent = worker.request(
                ("slowdowns", list(machines)), "slowdowns", deadline, self._clock()
            )
        except WorkerUnavailable:
            self._fail_worker(sid, "pipe to worker closed")
            return None
        if not sent:
            return None  # window full; stay stale and retry next refresh
        response = self._await_ack(sid, "slowdowns", deadline)
        if response is None:
            return None
        return {
            machine: (comp, comm, Confidence(conf))
            for machine, (comp, comm, conf) in response[1].items()
        }

    def _shard_state_hash(self, sid: int) -> str:
        worker = self._workers[sid]
        if worker.state == WorkerHandle.LIVE:
            self._drain(sid)
            self._flush_frame(sid)
            worker = self._workers[sid]
        if worker.state == WorkerHandle.LIVE:
            try:
                sent = worker.request(
                    ("hash",), "hash", self.supervisor.replay_deadline, self._clock()
                )
            except WorkerUnavailable:
                self._fail_worker(sid, "pipe to worker closed")
                sent = False
            if sent:
                response = self._await_ack(
                    sid, "hash", self.supervisor.replay_deadline
                )
                if response is not None:
                    return response[1]
        # Dead or replaying worker: derive the hash the worker will
        # converge to by replaying the journal locally — deterministic,
        # it is the exact same stream.
        from ..experiments.journal import EventLog

        rebuilt = self.shards[sid].fresh()
        replay_stream(rebuilt, EventLog.replay(self.log.path))
        return rebuilt.state_hash()

    def _recovery_checkpoint(
        self, sid: int, state_trusted: bool
    ) -> ReplayCheckpoint | None:
        # The parent never holds the worker's live state; the last
        # clean heartbeat fingerprint is the trusted mid-stream anchor
        # (cleared on desync before the quarantine is recorded).
        return self._checkpoints.get(sid)

    def _note_failover(self, count: int) -> None:
        self.failover_answers += 1
        _obs.inc("fleet.failover_answers")

    # -- public surface --------------------------------------------------------

    def apply(self, event: Mapping[str, Any]) -> bool:
        self.tick()
        return super().apply(event)

    def query(self, tenant: str, query: PlacementQuery) -> PlacementAnswer:
        self.tick()
        return super().query(tenant, query)

    def recover(self, sid: int) -> bool:
        """Drive one supervision sweep; report whether *sid* is back.

        Respawn and replay verification are the supervisor's job — this
        just gives callers of the base API a way to push it along.
        """
        self.tick(force=True)
        return sid not in self.quarantined

    def await_recovery(self, timeout: float = 30.0) -> bool:
        """Tick until every worker is live, verified, and drained.

        Drained matters: a wedged worker still reads as LIVE until its
        oldest in-flight request blows its deadline, so "no quarantine"
        alone would declare a hung fleet recovered. Waiting for empty
        in-flight windows forces the hang to either answer or expire.
        """
        end = time.monotonic() + timeout
        while True:
            self.tick(force=True)
            if not self.quarantined and all(
                w.state == WorkerHandle.LIVE and not len(w.pending)
                for w in self._workers
            ):
                return True
            if time.monotonic() >= end:
                return False
            time.sleep(0.01)

    def inject_fault(self, sid: int, kind: str, after: int = 1) -> bool:
        """Chaos hook: arm worker *sid* to fail after *after* more applies.

        *kind* is one of ``exit`` (SIGKILL-equivalent crash), ``hang``
        (wedge without answering), ``raise`` (exception escapes the
        handler). Returns False when the worker is not reachable.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {kind!r}")
        worker = self._workers[sid]
        if worker.state == WorkerHandle.DEAD:
            return False
        # Chaos lands on a frame boundary: buffered events go first.
        self._flush_frame(sid)
        worker = self._workers[sid]
        if worker.state == WorkerHandle.DEAD:
            return False
        try:
            return worker.request(
                ("inject", kind, int(after)),
                "inject",
                self.supervisor.heartbeat_timeout,
                self._clock(),
            )
        except WorkerUnavailable:
            self._fail_worker(sid, "pipe to worker closed")
            return False

    def worker_pid(self, sid: int) -> int | None:
        """OS pid of shard *sid*'s worker (for external SIGKILL chaos)."""
        return self._workers[sid].pid

    def worker_state(self, sid: int) -> str:
        """``live`` / ``replaying`` / ``dead`` for shard *sid*'s worker."""
        return self._workers[sid].state

    def worker_depth(self, sid: int) -> int:
        """In-flight (unacknowledged) requests to shard *sid*'s worker."""
        return len(self._workers[sid].pending)

    def counters(self) -> dict[str, int]:
        out = super().counters()
        out.update(
            {
                "heartbeats_missed": self.heartbeats_missed,
                "respawns": self.respawns,
                "replay_events": self.replay_events,
                "failover_answers": self.failover_answers,
                "worker_failures": self.worker_failures,
                "worker_backpressure": self.worker_backpressure,
            }
        )
        return out

    def close(self) -> None:
        """Shut every worker down (politely, then forcibly)."""
        for sid in range(self.num_shards):
            self._flush_frame(sid)
        for worker in self._workers:
            if worker.state != WorkerHandle.DEAD and worker.alive():
                worker.shutdown()
            else:
                worker.kill()
