"""Fleet registry: which application runs where, owned by whom.

The registry is the service's control-plane view of the fleet — a flat
map from application name to :class:`AppRecord` (tenant, machine,
profile), plus the per-tenant and per-machine aggregates the admission
controller and the analytic fallback need in O(1):

* ``tenant_counts`` backs the per-tenant ``max_apps`` quota;
* ``machine_counts`` / ``machine_comm_sums`` are the inputs to the
  calibration-free closed forms (``p + 1`` computation slowdown,
  ``1 + Σ f_k`` communication slowdown) that answer *shed* queries and
  queries against *quarantined* machines without touching any shard
  state.

The registry never talks to a :class:`~repro.core.runtime.SlowdownManager`
— it is rebuilt from the same event stream the shards consume, which is
what keeps the analytic aggregates trustworthy while a shard is being
replayed back to health.

:func:`synthetic_feed` is the shared deterministic event generator: the
soak CLI, the recovery tests, the benchmark and the fleet experiment
all drive the service with it, so a kill-and-replay run can be compared
bit-for-bit against an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..core.workload import ApplicationProfile

__all__ = ["AppRecord", "FleetRegistry", "synthetic_feed"]


@dataclass(frozen=True)
class AppRecord:
    """One registered application: who owns it and where it runs."""

    name: str
    tenant: str
    machine: int
    comm_fraction: float
    message_size: float

    def profile(self) -> ApplicationProfile:
        """The contention-model view of this application."""
        return ApplicationProfile(
            name=self.name,
            comm_fraction=self.comm_fraction,
            message_size=self.message_size,
        )


class FleetRegistry:
    """Name → :class:`AppRecord` map with O(1) tenant/machine aggregates.

    Records are stored struct-of-arrays: an application is a slot index
    into pooled ``machine``/``comm_fraction``/``message_size`` arrays
    plus an interned tenant id, and :class:`AppRecord` objects are
    materialized on demand. At 1M registered apps this costs ~21 bytes
    of pooled numeric state per app (int64 machine, float64 fraction
    and size, int32 tenant id) plus one name→slot dict entry — instead
    of a 5-field frozen dataclass instance per app.
    """

    _SLOT_CAP = 64

    def __init__(self, machines: int) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines!r}")
        self.machines = int(machines)
        #: Application name → pooled slot, insertion-ordered (this is
        #: the "registry order" :meth:`on_machines` preserves).
        self._slot: dict[str, int] = {}
        self._machine = np.zeros(self._SLOT_CAP, dtype=np.int64)
        self._frac = np.zeros(self._SLOT_CAP)
        self._size = np.zeros(self._SLOT_CAP)
        self._tenant_id = np.zeros(self._SLOT_CAP, dtype=np.int32)
        self._free: list[int] = []
        self._next_slot = 0
        #: Interned tenant names; ``_tenant_id`` indexes this list.
        self._tenants: list[str] = []
        self._tenant_key: dict[str, int] = {}
        self._tenant_counts: dict[str, int] = {}
        #: Registered applications per machine (analytic ``p``).
        self.machine_counts = np.zeros(self.machines, dtype=np.int64)
        #: Sum of comm fractions per machine (analytic ``Σ f_k``).
        self.machine_comm_sums = np.zeros(self.machines, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._slot)

    def __contains__(self, name: str) -> bool:
        return name in self._slot

    def _record(self, name: str, slot: int) -> AppRecord:
        return AppRecord(
            name=name,
            tenant=self._tenants[self._tenant_id[slot]],
            machine=int(self._machine[slot]),
            comm_fraction=float(self._frac[slot]),
            message_size=float(self._size[slot]),
        )

    def get(self, name: str) -> AppRecord | None:
        slot = self._slot.get(name)
        return None if slot is None else self._record(name, slot)

    def tenant_count(self, tenant: str) -> int:
        """Applications currently registered by *tenant*."""
        return self._tenant_counts.get(tenant, 0)

    def names(self) -> list[str]:
        """Sorted names of every registered application."""
        return sorted(self._slot)

    def add(self, record: AppRecord) -> None:
        """Register *record* (caller has already validated admission)."""
        if record.name in self._slot:
            raise KeyError(f"application {record.name!r} is already registered")
        if not 0 <= record.machine < self.machines:
            raise KeyError(f"machine {record.machine!r} out of range")
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._next_slot
            self._next_slot += 1
            if slot >= self._machine.size:
                cap = self._machine.size * 2
                for attr in ("_machine", "_frac", "_size", "_tenant_id"):
                    old = getattr(self, attr)
                    grown = np.zeros(cap, dtype=old.dtype)
                    grown[:slot] = old[:slot]
                    setattr(self, attr, grown)
        tenant_id = self._tenant_key.get(record.tenant)
        if tenant_id is None:
            tenant_id = len(self._tenants)
            self._tenants.append(record.tenant)
            self._tenant_key[record.tenant] = tenant_id
        self._machine[slot] = record.machine
        self._frac[slot] = record.comm_fraction
        self._size[slot] = record.message_size
        self._tenant_id[slot] = tenant_id
        self._slot[record.name] = slot
        self._tenant_counts[record.tenant] = self.tenant_count(record.tenant) + 1
        self.machine_counts[record.machine] += 1
        self.machine_comm_sums[record.machine] += record.comm_fraction

    def remove(self, name: str) -> AppRecord:
        """Deregister and return the record for *name*."""
        slot = self._slot.pop(name, None)
        if slot is None:
            raise KeyError(f"application {name!r} is not registered")
        record = self._record(name, slot)
        self._free.append(slot)
        remaining = self.tenant_count(record.tenant) - 1
        if remaining:
            self._tenant_counts[record.tenant] = remaining
        else:
            self._tenant_counts.pop(record.tenant, None)
        self.machine_counts[record.machine] -= 1
        self.machine_comm_sums[record.machine] -= record.comm_fraction
        return record

    def on_machines(self, machine_ids: Iterable[int]) -> list[AppRecord]:
        """Records placed on any of *machine_ids* (registry-order)."""
        wanted = set(machine_ids)
        return [
            self._record(name, slot)
            for name, slot in self._slot.items()
            if int(self._machine[slot]) in wanted
        ]


def synthetic_feed(
    seed: int,
    events: int,
    machines: int,
    tenants: int = 4,
    comm_fraction_range: tuple[float, float] = (0.05, 0.8),
    message_sizes: tuple[int, ...] = (64, 256, 1024, 2048),
    depart_probability: float = 0.35,
    start_seq: int = 0,
) -> Iterator[dict]:
    """Deterministic arrive/depart event stream for soak, test and bench.

    Events are self-contained dicts in the shape the fleet service logs
    (``op``, ``app``, ``tenant``, ``machine``, ``comm_fraction``,
    ``message_size``) — no ``seq``; the service's event log stamps that.
    Departures pick a uniformly random *live* application, so any prefix
    of the stream is internally consistent (never departs an app it has
    not arrived). The stream is a pure function of its arguments:
    ``start_seq`` resumes generation mid-stream by fast-forwarding a
    fresh generator, which is how the soak CLI continues a killed run
    deterministically.
    """
    rng = np.random.default_rng(seed)
    live: list[tuple[str, str, int, float, float]] = []
    next_id = 0
    produced = 0
    lo, hi = comm_fraction_range
    while produced < start_seq + events:
        depart = bool(live) and float(rng.random()) < depart_probability
        if depart:
            idx = int(rng.integers(len(live)))
            name, tenant, machine, frac, size = live.pop(idx)
            event = {
                "op": "depart",
                "app": name,
                "tenant": tenant,
                "machine": machine,
                "comm_fraction": frac,
                "message_size": size,
            }
        else:
            name = f"app-{next_id}"
            next_id += 1
            tenant = f"tenant-{int(rng.integers(tenants))}"
            machine = int(rng.integers(machines))
            frac = round(float(lo + (hi - lo) * rng.random()), 6)
            size = float(message_sizes[int(rng.integers(len(message_sizes)))])
            live.append((name, tenant, machine, frac, size))
            event = {
                "op": "arrive",
                "app": name,
                "tenant": tenant,
                "machine": machine,
                "comm_fraction": frac,
                "message_size": size,
            }
        if produced >= start_seq:
            yield event
        produced += 1
