"""Simulated applications: probes, benchmarks, contention generators."""

from .burst import message_burst
from .contender import alternating, continuous_comm, cpu_bound, dedicated_message_time
from .pingpong import pingpong_burst, pingpong_burst_reverse
from .program import cyclic_program, frontend_program, traced_program, transfer_program

__all__ = [
    "alternating",
    "continuous_comm",
    "cpu_bound",
    "cyclic_program",
    "dedicated_message_time",
    "frontend_program",
    "message_burst",
    "pingpong_burst",
    "pingpong_burst_reverse",
    "traced_program",
    "transfer_program",
]
