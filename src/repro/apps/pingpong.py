"""The ping-pong calibration benchmark (§3.2.1).

"This benchmark transfers messages from the Sun to the Paragon in
bursts containing 1000 messages of the same size. After each burst, one
message containing one word is transferred back to the Sun."

:func:`pingpong_burst` measures one burst (messages out + 1-word ack
in); :func:`pingpong_burst_reverse` mirrors it for the
Paragon → Sun direction. Both return the burst's elapsed time, the
quantity regressed into (α, β) and probed under contention for the
delay tables.
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import WorkloadError
from ..sim.engine import Event
from ..platforms.sunparagon import SunParagonPlatform

__all__ = ["pingpong_burst", "pingpong_burst_reverse"]

#: Burst length used throughout the paper's Sun/Paragon experiments.
DEFAULT_BURST = 1000


def pingpong_burst(
    platform: SunParagonPlatform,
    size_words: float,
    count: int = DEFAULT_BURST,
    mode: str = "1hop",
    tag: str = "pingpong",
) -> Generator[Event, Any, float]:
    """One burst Sun → Paragon: *count* messages out, one 1-word ack in.

    Returns the elapsed (virtual) time of the whole burst.
    """
    if count < 1:
        raise WorkloadError(f"burst needs >= 1 message, got {count!r}")
    sim = platform.sim
    start = sim.now
    for _ in range(count):
        yield from platform.send(size_words, tag=tag, mode=mode)
    yield from platform.recv(1, tag=tag, mode=mode)
    return sim.now - start


def pingpong_burst_reverse(
    platform: SunParagonPlatform,
    size_words: float,
    count: int = DEFAULT_BURST,
    mode: str = "1hop",
    tag: str = "pingpong",
) -> Generator[Event, Any, float]:
    """One burst Paragon → Sun: *count* messages in, one 1-word ack out."""
    if count < 1:
        raise WorkloadError(f"burst needs >= 1 message, got {count!r}")
    sim = platform.sim
    start = sim.now
    for _ in range(count):
        yield from platform.recv(size_words, tag=tag, mode=mode)
    yield from platform.send(1, tag=tag, mode=mode)
    return sim.now - start
