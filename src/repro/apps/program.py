"""Measured application programs.

Wrappers that run a *probed* application on a platform and report its
elapsed time:

* :func:`frontend_program` — a task executing entirely on the front-end
  (the SOR-on-the-Sun workload of Figures 7/8);
* :func:`traced_program` — a trace-driven task on the Sun/CM2 (the
  Gaussian-elimination-on-the-CM2 workload of Figure 3);
* :func:`transfer_program` — a pure data-movement task on the Sun/CM2
  (the matrix-shipping workload of Figure 1).
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim.engine import Event
from ..sim.monitors import Timeline
from ..platforms.base import CoupledPlatform
from ..platforms.suncm2 import SunCM2Platform, TraceRunResult
from ..traces.instructions import Trace

__all__ = ["frontend_program", "traced_program", "transfer_program"]


def frontend_program(
    platform: CoupledPlatform, work: float, tag: str = "task"
) -> Generator[Event, Any, float]:
    """Run *work* dedicated-seconds on the front-end; return elapsed time."""
    sim = platform.sim
    start = sim.now
    yield platform.frontend_cpu.execute(work, tag=tag)
    return sim.now - start


def traced_program(
    platform: SunCM2Platform,
    trace: Trace,
    tag: str = "task",
    timeline: Timeline | None = None,
) -> Generator[Event, Any, TraceRunResult]:
    """Execute an instruction trace on the Sun/CM2; return its measurements."""
    result = yield from platform.run_trace(trace, tag=tag, timeline=timeline)
    return result


def cyclic_program(
    platform,
    cycles: int,
    comp_per_cycle: float,
    messages_per_cycle: int,
    message_size: float,
    tag: str = "cyclic",
    mode: str = "1hop",
) -> Generator[Event, Any, float]:
    """A §2-shaped application: alternate computation and communication.

    Each cycle runs *comp_per_cycle* dedicated-seconds on the front-end
    and then exchanges *messages_per_cycle* messages with the back-end
    (alternating directions). Returns the elapsed time of the whole
    run — the quantity :func:`repro.core.prediction.predict_mixed_time`
    predicts.
    """
    from ..errors import WorkloadError

    if cycles < 1:
        raise WorkloadError(f"need >= 1 cycle, got {cycles!r}")
    if comp_per_cycle < 0 or messages_per_cycle < 0:
        raise WorkloadError("cycle parameters must be >= 0")
    sim = platform.sim
    start = sim.now
    flip = 0
    for _ in range(cycles):
        if comp_per_cycle > 0:
            yield platform.frontend_cpu.execute(comp_per_cycle, tag=tag)
        for _ in range(messages_per_cycle):
            direction = "out" if flip % 2 == 0 else "in"
            flip += 1
            yield from platform.message(message_size, direction, tag=tag, mode=mode)
    return sim.now - start


def transfer_program(
    platform: SunCM2Platform,
    size_words: float,
    count: int,
    round_trip: bool = True,
    tag: str = "xfer",
) -> Generator[Event, Any, float]:
    """Ship *count* messages of *size_words* to the CM2 (and back).

    The Figure 1 workload: an M×M matrix moved to the CM2 before an SOR
    step and moved back afterwards. Returns the elapsed time.
    """
    sim = platform.sim
    start = sim.now
    yield from platform.transfer(size_words, count, tag=tag)
    if round_trip:
        yield from platform.transfer(size_words, count, tag=tag)
    return sim.now - start
