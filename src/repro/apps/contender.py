"""Emulated contention generators.

The paper validates its model "on production systems in which the
contention was emulated": synthetic competitor applications with known
behaviour. This module provides the same instruments:

* :func:`cpu_bound` — a pure compute loop (the Sun/CM2 experiments and
  the ``delay_comp^i`` calibration runs);
* :func:`continuous_comm` — a loop that transfers messages of a fixed
  size back-to-back (the ``delay_comm^i`` / ``delay_comm^{i,j}``
  calibration runs);
* :func:`alternating` — the experimental workload of Figures 5–8: an
  application that alternates computation and communication cycles
  with a given long-run communication fraction and message size.

All generators are *non-terminating*: experiments run them in the
background and stop the simulation once the probed application
finishes (:meth:`repro.sim.engine.Simulator.run_until`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

import numpy as np

from ..errors import WorkloadError
from ..sim.engine import Event, Interrupt
from ..platforms.sunparagon import SunParagonPlatform
from ..platforms.base import CoupledPlatform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultInjector

__all__ = [
    "cpu_bound",
    "continuous_comm",
    "alternating",
    "churned",
    "dedicated_message_time",
]

#: Default CPU chunk for compute loops: long enough to be cheap to
#: simulate, short enough that contender arrival/departure granularity
#: does not distort experiments.
_DEFAULT_CHUNK = 0.05


def cpu_bound(
    platform: CoupledPlatform, tag: str = "cpuhog", chunk: float = _DEFAULT_CHUNK
) -> Generator[Event, Any, None]:
    """An endless CPU-bound application on the front-end."""
    if chunk <= 0:
        raise WorkloadError(f"chunk must be > 0, got {chunk!r}")
    while True:
        yield platform.frontend_cpu.execute(chunk, tag=tag)


def continuous_comm(
    platform: SunParagonPlatform,
    size_words: float,
    direction: str = "out",
    tag: str = "commhog",
    mode: str = "1hop",
) -> Generator[Event, Any, None]:
    """An endless message loop (always-communicating generator).

    This is the paper's calibration generator: "contention generators
    that transfer one-word messages from the Sun to the Paragon"
    (and the reverse) for ``delay_comm^i``, or ``j``-word messages for
    ``delay_comm^{i,j}``.
    """
    while True:
        yield from platform.message(size_words, direction, tag=tag, mode=mode)


def churned(
    platform: CoupledPlatform,
    factory: Callable[[], Generator[Event, Any, Any]],
    injector: "FaultInjector",
    name: str = "churn",
) -> Generator[Event, Any, None]:
    """Run a contender under crash/restart churn from a fault plan.

    Wraps *factory* (a zero-argument callable building a fresh contender
    generator, e.g. ``lambda: cpu_bound(platform)``) in a supervision
    loop: each incarnation lives for an exponential lifetime drawn from
    the injector's ``crash_rate``, is crashed with an
    :class:`~repro.sim.engine.Interrupt`, and restarts after the plan's
    ``restart_delay``. The crash takes effect at the contender's next
    yield point; in-flight CPU work drains (a 1996 kernel finishes the
    current slice too), while the interrupt-safe link/resource layer
    releases any wire the victim held or queued for.

    With churn disabled (``crash_rate == 0``) the wrapper degenerates to
    running a single incarnation untouched — and draws no random
    numbers, preserving zero-fault reproducibility.
    """
    sim = platform.sim
    incarnation = 0
    while True:
        proc = sim.process(factory(), name=f"{name}#{incarnation}")
        lifetime = injector.crash_lifetime()
        if lifetime is None:
            # No churn planned: shadow the single incarnation forever.
            yield proc
            return
        yield sim.any_of([proc, sim.timeout(lifetime)])
        if not proc.is_alive:
            # The contender terminated on its own; nothing left to churn.
            return
        proc.interrupt("fault-injected crash")
        try:
            yield proc  # let the victim unwind at this instant
        except Interrupt:
            pass
        injector.count("contender_crash")
        pause = injector.restart_pause()
        if pause > 0:
            yield sim.timeout(pause)
        incarnation += 1


def dedicated_message_time(
    platform: SunParagonPlatform, size_words: float, mode: str = "1hop"
) -> float:
    """Ground-truth dedicated time of one message on *platform*.

    Used only to translate a contender's *time* budget into a message
    *count* — the contender is defined by how much communication work
    it performs, not by measured model parameters.
    """
    return platform.spec.message_dedicated_time(size_words, mode)


def alternating(
    platform: SunParagonPlatform,
    comm_fraction: float,
    message_size: float,
    rng: np.random.Generator,
    mean_cycle: float = 0.25,
    direction: str = "both",
    tag: str = "alt",
    mode: str = "1hop",
) -> Generator[Event, Any, None]:
    """An application alternating computation and communication cycles.

    Parameters
    ----------
    platform:
        The Sun/Paragon platform the application lives on.
    comm_fraction:
        Long-run fraction of (dedicated-equivalent) time spent
        communicating — the ``%`` the paper's experiments quote.
    message_size:
        Words per message during communication cycles.
    rng:
        Random stream for the cycle-length draws (exponential), which
        make the instantaneous overlap of contenders stochastic — the
        phenomenon the Poisson-binomial model approximates.
    mean_cycle:
        Mean duration of one full compute+communicate cycle, seconds.
    direction:
        ``"out"``, ``"in"`` or ``"both"`` (alternate message
        directions, the default — contending applications both feed
        and drain the Paragon).
    """
    if not 0.0 <= comm_fraction <= 1.0:
        raise WorkloadError(f"comm_fraction must be in [0, 1], got {comm_fraction!r}")
    if mean_cycle <= 0:
        raise WorkloadError(f"mean_cycle must be > 0, got {mean_cycle!r}")
    if direction not in ("out", "in", "both"):
        raise WorkloadError(f"direction must be 'out', 'in' or 'both', got {direction!r}")
    if comm_fraction > 0 and message_size <= 0:
        raise WorkloadError("a communicating contender needs a positive message size")

    per_message = dedicated_message_time(platform, message_size, mode) if comm_fraction else 0.0
    flip = 0
    while True:
        comp_target = (1.0 - comm_fraction) * mean_cycle
        comm_target = comm_fraction * mean_cycle
        if comp_target > 0:
            work = rng.exponential(comp_target)
            yield platform.frontend_cpu.execute(work, tag=tag)
        if comm_target > 0:
            budget = rng.exponential(comm_target)
            messages = max(1, int(round(budget / per_message)))
            for _ in range(messages):
                if direction == "both":
                    d = "out" if flip % 2 == 0 else "in"
                    flip += 1
                else:
                    d = direction
                yield from platform.message(message_size, d, tag=tag, mode=mode)
