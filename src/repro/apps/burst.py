"""One-directional burst transfers (the Figures 4–6 workload).

The measured application in the Sun/Paragon communication experiments
moves "bursts of 1000 equal-sized messages" to or from the Paragon.
:func:`message_burst` is that application; it returns the burst's
elapsed time.
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import WorkloadError
from ..sim.engine import Event
from ..platforms.sunparagon import SunParagonPlatform

__all__ = ["message_burst"]


def message_burst(
    platform: SunParagonPlatform,
    size_words: float,
    count: int = 1000,
    direction: str = "out",
    mode: str = "1hop",
    tag: str = "burst",
) -> Generator[Event, Any, float]:
    """Transfer *count* messages of *size_words* in one direction.

    Returns the elapsed (virtual) time of the burst.
    """
    if count < 1:
        raise WorkloadError(f"burst needs >= 1 message, got {count!r}")
    sim = platform.sim
    start = sim.now
    for _ in range(count):
        yield from platform.message(size_words, direction, tag=tag, mode=mode)
    return sim.now - start
