"""Unit conventions and conversion helpers.

The paper — and therefore this library — expresses message sizes in
**words** (4-byte words, the natural unit on the Sun/CM2 and Sun/Paragon
platforms of 1996) and all times in **seconds**. Bandwidths are in
**words per second** ("effective bandwidth" in the paper's terminology:
the achieved transfer rate, not the link's peak rate).

Keeping the unit discipline in one module avoids the classic HPC
modeling bug of mixing bytes and words, or milliseconds and seconds, in
cost formulas.
"""

from __future__ import annotations

import math

from .errors import ValidationError

__all__ = [
    "BYTES_PER_WORD",
    "words_to_bytes",
    "bytes_to_words",
    "seconds",
    "per_second",
    "check_finite",
    "check_positive",
    "check_nonnegative",
    "check_fraction",
]

#: Size of one machine word in bytes on the modeled platforms.
BYTES_PER_WORD = 4


def words_to_bytes(words: float) -> float:
    """Convert a size in words to bytes."""
    return words * BYTES_PER_WORD


def bytes_to_words(nbytes: float) -> float:
    """Convert a size in bytes to (possibly fractional) words."""
    return nbytes / BYTES_PER_WORD


def seconds(value: float) -> float:
    """Identity marker used in platform specs to document the unit."""
    return float(value)


def per_second(value: float) -> float:
    """Identity marker for rates (words/second, operations/second)."""
    return float(value)


def check_finite(value: float, name: str) -> float:
    """Validate that *value* is a finite number and return it as float.

    Raises
    ------
    ValidationError
        If *value* is NaN or infinite (a NaN fed to a cost kernel does
        not fail there — it silently poisons every downstream
        prediction, which is why the boundary must reject it).
    """
    v = float(value)
    if not math.isfinite(v):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return v


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is finite and strictly positive.

    Raises
    ------
    ValidationError
        If ``value <= 0``, NaN or infinite.
    """
    v = check_finite(value, name)
    if not v > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return v


def check_nonnegative(value: float, name: str) -> float:
    """Validate that *value* is finite and >= 0, returning it as float."""
    v = check_finite(value, name)
    if v < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return v


def check_fraction(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    v = check_finite(value, name)
    if not 0.0 <= v <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return v
