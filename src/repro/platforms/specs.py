"""Ground-truth numeric specifications of the simulated platforms.

These dataclasses play the role of the *physical hardware*: the wire
latencies, conversion costs, scheduler quantum, sequencer overheads and
compute rates that the discrete-event platform models obey. They were
chosen so that magnitudes resemble the paper's mid-90s measurements
(transfers and kernels in the 0.01–10 s range, a ~1 MW/s effective
link, a millisecond-scale message startup, a 1024-word buffer
threshold).

**The analytical model never reads these numbers.** It estimates its
(α, β) pairs and delay tables by running the paper's calibration
benchmarks *on* the simulated platform — keeping the validation honest,
exactly as the authors could not read their Ethernet's true parameters
and had to fit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import check_nonnegative, check_positive

__all__ = [
    "CpuSpec",
    "WireSpec",
    "SunCM2Spec",
    "SunParagonSpec",
    "DEFAULT_SUNCM2",
    "DEFAULT_SUNPARAGON",
]


@dataclass(frozen=True)
class CpuSpec:
    """Front-end CPU scheduling parameters.

    ``discipline="rr"`` with a millisecond quantum and a small
    context-switch cost models a mid-90s SunOS scheduler; the
    analytical model's fluid ``p + 1`` assumption is then an
    approximation, one source of its residual error.

    ``daemon_interval``/``daemon_work`` emulate the operating system's
    own background activity (page daemon, network stack, cron): a
    burst of CPU work of mean ``daemon_work`` seconds every
    ``daemon_interval`` seconds on average (both exponential). This is
    the "production system" noise the paper cites when explaining why
    it targets accuracy *on average*; set ``daemon_interval = 0`` for
    a sterile machine.
    """

    capacity: float = 1.0
    discipline: str = "rr"
    quantum: float = 1e-3
    context_switch: float = 5e-5
    daemon_interval: float = 0.25
    daemon_work: float = 5e-3

    def __post_init__(self) -> None:
        check_positive(self.capacity, "capacity")
        check_positive(self.quantum, "quantum")
        check_nonnegative(self.context_switch, "context_switch")
        check_nonnegative(self.daemon_interval, "daemon_interval")
        check_nonnegative(self.daemon_work, "daemon_work")


@dataclass(frozen=True)
class WireSpec:
    """The physical link: per-fragment wire occupancy plus a buffer bound.

    The transport fragments any message larger than ``buffer_words``
    (the TCP socket-buffer size, 1024 words = 4 KB here) into
    fragments of at most that size, each paying the per-fragment
    ``alpha`` startup. This fragmentation is the *physical origin* of
    the paper's two observations on the Sun/Paragon:

    * the dedicated per-message cost is **piecewise linear** in message
      size with a threshold at the buffer size (Figure 4 / §3.2.1) —
      above it, every extra buffer's worth of words pays another
      startup, changing the slope;
    * the delay a communicating contender imposes **saturates** above
      the buffer size (§3.2.2) — a 4096-word generator occupies the
      wire exactly like a back-to-back sequence of 1024-word
      fragments, so its steady-state interference stops depending on
      the message size.
    """

    buffer_words: float = 1024.0
    alpha: float = 0.9e-3
    per_word: float = 1.1e-6

    def __post_init__(self) -> None:
        check_positive(self.buffer_words, "buffer_words")
        check_nonnegative(self.alpha, "alpha")
        check_nonnegative(self.per_word, "per_word")

    def fragment_sizes(self, size_words: float) -> list[float]:
        """Split one message into transport fragments (≤ buffer each).

        Fragments are equal-sized (the transport fills its buffer
        evenly), and a zero-size message still occupies one (empty)
        fragment — every message pays at least one startup.
        """
        if size_words < 0:
            raise ValueError(f"message size must be >= 0, got {size_words!r}")
        if size_words <= self.buffer_words:
            return [float(size_words)]
        n = int(-(-size_words // self.buffer_words))  # ceil division
        return [size_words / n] * n

    def occupancy(self, size_words: float) -> float:
        """Wire holding time for one *fragment* of *size_words*.

        Callers must fragment first; holding times for oversized
        payloads are still computed linearly (the :class:`Link` is
        generic), but the platforms never request them.
        """
        return self.alpha + size_words * self.per_word

    def message_wire_time(self, size_words: float) -> float:
        """Total wire occupancy of one message after fragmentation."""
        return sum(self.occupancy(f) for f in self.fragment_sizes(size_words))


@dataclass(frozen=True)
class SunCM2Spec:
    """Ground truth for the Sun/CM2 coupled platform (§3.1).

    Attributes
    ----------
    cpu:
        Front-end scheduler parameters.
    transfer_alpha, transfer_per_word:
        Host-resident cost of moving one message to/from the CM2:
        element-by-element copies executed *by the Sun's CPU* — the
        architectural fact behind the paper's finding that CPU-bound
        contenders slow CM2 communication by ``p + 1``.
    issue_cost:
        Front-end CPU time to issue one parallel instruction to the
        sequencer.
    decode_overhead:
        Back-end time to decode one instruction before executing it.
    lookahead:
        Depth of the sequencer's instruction queue: how far the Sun may
        pre-execute serial code ahead of the CM2 (the reason
        ``didle <= dserial`` in §3.1.2).
    result_return:
        Front-end CPU time to pick up a reduction result.
    ge_serial_per_iter:
        Ground-truth serial (Sun) work per Gaussian-elimination
        iteration — pivot selection bookkeeping, loop control.
    ge_parallel_per_element:
        Ground-truth CM2 time per matrix element updated in one
        elimination step.
    sor_parallel_per_point:
        CM2 time per grid point per SOR sweep.
    sor_serial_per_iter:
        Sun serial work per SOR sweep (loop control).
    """

    cpu: CpuSpec = field(default_factory=CpuSpec)
    transfer_alpha: float = 1.2e-3
    transfer_per_word: float = 2.0e-6
    issue_cost: float = 1.5e-4
    decode_overhead: float = 2.0e-5
    lookahead: int = 4
    result_return: float = 5.0e-5
    ge_serial_per_iter: float = 2.2e-3
    ge_parallel_per_element: float = 2.4e-7
    sor_parallel_per_point: float = 6.0e-9
    sor_serial_per_iter: float = 4.0e-4
    # Generic per-operation rates for the library-task traces (the §2
    # matmul/sorting story): CM2 element-wise op, front-end flop and
    # front-end comparison costs. The CM2's front end is a Sun 4/60 —
    # an older, slower machine than the Sun/Paragon platform's
    # SPARCstation (the paper names them separately), hence the ~MFLOPS
    # scalar rates.
    elementwise_op_time: float = 5.0e-10
    sun_flop_time: float = 3.0e-7
    sun_compare_time: float = 5.0e-7

    def __post_init__(self) -> None:
        check_nonnegative(self.transfer_alpha, "transfer_alpha")
        check_positive(self.transfer_per_word, "transfer_per_word")
        check_nonnegative(self.issue_cost, "issue_cost")
        check_nonnegative(self.decode_overhead, "decode_overhead")
        if self.lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {self.lookahead!r}")
        check_nonnegative(self.result_return, "result_return")

    def message_cpu_time(self, size_words: float) -> float:
        """Sun CPU seconds consumed moving one message of *size_words*."""
        return self.transfer_alpha + size_words * self.transfer_per_word


@dataclass(frozen=True)
class SunParagonSpec:
    """Ground truth for the Sun/Paragon coupled platform (§3.2).

    Attributes
    ----------
    cpu:
        Front-end scheduler parameters.
    wire:
        The shared Ethernet's occupancy curve (contended FIFO).
    conv_fixed, conv_per_word:
        Front-end CPU cost of data-format conversion per message — the
        reason CPU-bound contenders delay communication on this
        platform too (§3.2.1).
    node_handling:
        Per-message processing at the Paragon side (uncontended).
    nx_alpha, nx_per_word:
        The service-node → compute-node NX leg used in 2-HOPS mode.
    service_node_capacity:
        How many messages the service node forwards at once.
    sun_flop_time:
        Front-end seconds per floating-point operation (drives the SOR
        ground truth for Figures 7/8).
    paragon_node_flop_time:
        Per-node compute rate of the Paragon partition.
    """

    cpu: CpuSpec = field(default_factory=CpuSpec)
    wire: WireSpec = field(default_factory=WireSpec)
    conv_fixed: float = 2.5e-4
    conv_per_word: float = 1.2e-6
    node_handling: float = 2.0e-4
    nx_alpha: float = 3.0e-4
    nx_per_word: float = 1.2e-7
    service_node_capacity: int = 1
    sun_flop_time: float = 5.0e-8
    paragon_node_flop_time: float = 8.0e-8

    def __post_init__(self) -> None:
        check_nonnegative(self.conv_fixed, "conv_fixed")
        check_nonnegative(self.conv_per_word, "conv_per_word")
        check_nonnegative(self.node_handling, "node_handling")
        check_nonnegative(self.nx_alpha, "nx_alpha")
        check_nonnegative(self.nx_per_word, "nx_per_word")
        if self.service_node_capacity < 1:
            raise ValueError("service_node_capacity must be >= 1")
        check_positive(self.sun_flop_time, "sun_flop_time")
        check_positive(self.paragon_node_flop_time, "paragon_node_flop_time")

    def conversion_cpu_time(self, size_words: float) -> float:
        """Sun CPU seconds of format conversion for one *fragment*."""
        return self.conv_fixed + size_words * self.conv_per_word

    def nx_time(self, size_words: float) -> float:
        """Service-node NX forwarding time for one *fragment* (2-HOPS)."""
        return self.nx_alpha + size_words * self.nx_per_word

    def message_dedicated_time(self, size_words: float, mode: str = "1hop") -> float:
        """Ground-truth dedicated end-to-end time of one message.

        Prices conversion + wire + node handling (+ NX) over the
        transport fragments. Used by contention generators to translate
        a time budget into a message count, and by tests. Delegates to
        :func:`repro.platforms.sunparagon.dedicated_message_times` (and
        through it to the :mod:`repro.core.batch` fragmentation
        kernel), so scalar and batch pricing share one formula.
        """
        from .sunparagon import dedicated_message_times

        return float(dedicated_message_times(size_words, self, mode))


#: Default ground-truth instances used by the experiments.
DEFAULT_SUNCM2 = SunCM2Spec()
DEFAULT_SUNPARAGON = SunParagonSpec()
