"""Simulated coupled heterogeneous platforms (the paper's testbeds)."""

from .base import CoupledPlatform
from .specs import (
    CpuSpec,
    DEFAULT_SUNCM2,
    DEFAULT_SUNPARAGON,
    SunCM2Spec,
    SunParagonSpec,
    WireSpec,
)
from .mesh import MeshNetwork, MeshSpec, Partition, PartitionAllocator
from .paragon_backend import BackendTaskResult, ParagonBackend
from .suncm2 import SunCM2Platform, TraceRunResult
from .sunparagon import MessageTiming, SunParagonPlatform

__all__ = [
    "CoupledPlatform",
    "CpuSpec",
    "DEFAULT_SUNCM2",
    "DEFAULT_SUNPARAGON",
    "BackendTaskResult",
    "MeshNetwork",
    "ParagonBackend",
    "MeshSpec",
    "MessageTiming",
    "Partition",
    "PartitionAllocator",
    "SunCM2Platform",
    "SunCM2Spec",
    "SunParagonPlatform",
    "SunParagonSpec",
    "TraceRunResult",
    "WireSpec",
]
