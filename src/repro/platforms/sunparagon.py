"""The Sun/Paragon coupled platform simulator (§3.2).

The Sun and the Paragon are independent machines joined by an Ethernet
that only they sit on — the *link* is dedicated to the machine pair but
**shared by the applications** running on them, which is where the
communication contention of §3.2.1 comes from. On top of that, every
message costs the Sun CPU a data-format conversion, so CPU-bound
contenders delay communication too.

Two communication modes, as in the paper:

* **1-HOP** — the Sun talks TCP/IP directly to a compute node;
* **2-HOPS** — the Sun talks TCP/IP to a *service node*, which forwards
  over NX to the compute node. The extra leg serialises at the service
  node but is fast, so the two modes "present very similar behaviour"
  (Figure 4).

Computation on the Paragon itself is space-shared: an application gets
a dedicated partition of nodes, so back-end compute time is not
contended in this model (inter-partition mesh traffic and gang
scheduling, which the paper cites as includable in ``T_p``, are
provided by :mod:`repro.ext`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..errors import SimulationError, WorkloadError
from ..sim.engine import Event, Simulator
from ..sim.link import Link
from ..sim.resources import FifoResource
from ..sim.rng import RandomStreams
from .base import CoupledPlatform
from .specs import DEFAULT_SUNPARAGON, SunParagonSpec

__all__ = ["SunParagonPlatform", "MessageTiming", "dedicated_message_times"]

_MODES = ("1hop", "2hops")


def dedicated_message_times(sizes: Any, spec: SunParagonSpec = DEFAULT_SUNPARAGON, mode: str = "1hop"):
    """Ground-truth dedicated per-message times over an array of sizes.

    Vectorized pricing of whole message-size sweeps: each message pays,
    per transport fragment, the format conversion, the wire occupancy,
    the node handling and — in 2-HOPS mode — the NX forward. Delegates
    to :func:`repro.core.batch.fragmented_message_times`, the single
    implementation of the fragmentation cost formula; the scalar
    :meth:`~repro.platforms.specs.SunParagonSpec.message_dedicated_time`
    goes through the same kernel.
    """
    from ..core.batch import fragmented_message_times

    fixed = spec.conv_fixed + spec.wire.alpha + spec.node_handling
    per_word = spec.conv_per_word + spec.wire.per_word
    if mode == "2hops":
        fixed += spec.nx_alpha
        per_word += spec.nx_per_word
    return fragmented_message_times(sizes, spec.wire.buffer_words, fixed, per_word)


@dataclass(frozen=True)
class MessageTiming:
    """Breakdown of one message's journey (for diagnostics/tests)."""

    conversion: float
    wire_queue: float
    wire: float
    forward: float
    total: float


class SunParagonPlatform(CoupledPlatform):
    """Simulated Sun front-end + Intel Paragon back-end."""

    def __init__(
        self,
        sim: Simulator,
        spec: SunParagonSpec = DEFAULT_SUNPARAGON,
        streams: RandomStreams | None = None,
        name: str = "sunparagon",
    ) -> None:
        super().__init__(sim, spec.cpu, streams, name=name)
        self.spec = spec
        #: The shared Ethernet: a half-duplex FIFO medium.
        self.link = Link(sim, wire_time=spec.wire.occupancy, name=f"{name}-ether")
        #: The service node used by 2-HOPS transfers.
        self.service_node = FifoResource(
            sim, capacity=spec.service_node_capacity, name=f"{name}-svc"
        )
        #: Per-tag log of message sizes, the resource-manager view a
        #: :class:`~repro.core.measurement.UsageMonitor` consumes.
        self.message_log: dict[str, list[float]] = {}

    # -- message primitives -------------------------------------------------

    def send(
        self, size_words: float, tag: str = "msg", mode: str = "1hop"
    ) -> Generator[Event, Any, MessageTiming]:
        """One message Sun → Paragon.

        Sequence: data-format conversion on the (contended) Sun CPU,
        then the wire FIFO, then — in 2-HOPS mode — the service-node NX
        forward, then per-message handling at the destination node.
        """
        self._check_mode(mode)
        sim = self.sim
        t_start = sim.now
        self.message_log.setdefault(tag, []).append(float(size_words))
        conversion = wire = queued = forward = 0.0
        for frag in self.spec.wire.fragment_sizes(size_words):
            t0 = sim.now
            yield self.frontend_cpu.execute(self.spec.conversion_cpu_time(frag), tag=tag)
            conversion += sim.now - t0
            t0 = sim.now
            q = yield from self.link.transfer(frag, "out")
            queued += q
            wire += sim.now - t0 - q
            if mode == "2hops":
                t0 = sim.now
                yield from self._nx_forward(frag)
                forward += sim.now - t0
            # Each fragment is its own packet: the destination node
            # handles it individually (which is also why contention
            # effects saturate with message size — a big message is
            # indistinguishable from back-to-back buffer-sized ones).
            if self.spec.node_handling > 0:
                yield sim.timeout(self.spec.node_handling)
        return MessageTiming(
            conversion=conversion,
            wire_queue=queued,
            wire=wire,
            forward=forward,
            total=sim.now - t_start,
        )

    def recv(
        self, size_words: float, tag: str = "msg", mode: str = "1hop"
    ) -> Generator[Event, Any, MessageTiming]:
        """One message Paragon → Sun.

        Mirror image of :meth:`send`: node handling, (2-HOPS) NX leg,
        the wire, then format conversion on the contended Sun CPU.
        """
        self._check_mode(mode)
        sim = self.sim
        t_start = sim.now
        self.message_log.setdefault(tag, []).append(float(size_words))
        conversion = wire = queued = forward = 0.0
        for frag in self.spec.wire.fragment_sizes(size_words):
            if self.spec.node_handling > 0:
                yield sim.timeout(self.spec.node_handling)
            if mode == "2hops":
                t0 = sim.now
                yield from self._nx_forward(frag)
                forward += sim.now - t0
            t0 = sim.now
            q = yield from self.link.transfer(frag, "in")
            queued += q
            wire += sim.now - t0 - q
            t0 = sim.now
            yield self.frontend_cpu.execute(self.spec.conversion_cpu_time(frag), tag=tag)
            conversion += sim.now - t0
        return MessageTiming(
            conversion=conversion,
            wire_queue=queued,
            wire=wire,
            forward=forward,
            total=sim.now - t_start,
        )

    def message(
        self, size_words: float, direction: str, tag: str = "msg", mode: str = "1hop"
    ) -> Generator[Event, Any, MessageTiming]:
        """Dispatch on direction: ``"out"`` → :meth:`send`, ``"in"`` → :meth:`recv`."""
        if direction == "out":
            result = yield from self.send(size_words, tag=tag, mode=mode)
        elif direction == "in":
            result = yield from self.recv(size_words, tag=tag, mode=mode)
        else:
            raise WorkloadError(f"direction must be 'out' or 'in', got {direction!r}")
        return result

    # -- back-end computation ---------------------------------------------------

    def backend_compute(self, work: float, nodes: int = 16) -> Generator[Event, Any, float]:
        """Run *work* single-node-seconds on a dedicated partition.

        Space-sharing means no contention: elapsed = work / nodes.
        """
        if nodes < 1:
            raise WorkloadError(f"partition needs >= 1 node, got {nodes!r}")
        if work < 0:
            raise WorkloadError(f"work must be >= 0, got {work!r}")
        duration = work / nodes
        t0 = self.sim.now
        if duration > 0:
            yield self.sim.timeout(duration)
        return self.sim.now - t0

    # -- internals ---------------------------------------------------------------

    def _nx_forward(self, size_words: float) -> Generator[Event, Any, None]:
        yield from self.service_node.acquire(self.spec.nx_time(size_words))

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in _MODES:
            raise SimulationError(f"mode must be one of {_MODES}, got {mode!r}")
