"""The Paragon's back end as a first-class system: partitions + mesh.

`SunParagonPlatform.backend_compute` models the space-shared ideal
(elapsed = work / nodes). This module supplies the detailed back end
for studies of the ``T_p`` effects the paper points at: node
allocation on the physical mesh, intra-partition communication that
can cross other partitions' traffic, and (optionally) gang-scheduled
time-sharing of the nodes.

A back-end task here is a sequence of BSP-style supersteps: every node
computes, then exchanges with its ring neighbour inside the partition.
That is the communication structure of the paper's own kernels (SOR's
halo exchange, GE's pivot broadcast) reduced to its contention-relevant
essence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..errors import ScheduleError, WorkloadError
from ..ext.gang import GangScheduler
from ..sim.engine import Event, Simulator
from .mesh import MeshNetwork, MeshSpec, Partition, PartitionAllocator

__all__ = ["ParagonBackend", "BackendTaskResult"]


@dataclass(frozen=True)
class BackendTaskResult:
    """Measured outcome of one back-end task run."""

    elapsed: float
    compute_time: float
    comm_time: float
    partition: Partition

    @property
    def comm_fraction(self) -> float:
        busy = self.compute_time + self.comm_time
        return self.comm_time / busy if busy else 0.0


class ParagonBackend:
    """Mesh + allocator + (optional) gang scheduling for one machine.

    Parameters
    ----------
    sim:
        Owning simulator.
    mesh_spec:
        Geometry and link timing of the interconnect.
    node_flop_time:
        Seconds per flop on one node (compute phases are expressed in
        flops per node per superstep).
    gang_quantum, gang_switch_cost:
        When ``gang_quantum`` is positive, every node is time-shared
        between resident gangs at that quantum; zero (default) keeps
        nodes dedicated to their partition (pure space sharing).
    """

    def __init__(
        self,
        sim: Simulator,
        mesh_spec: MeshSpec = MeshSpec(),
        node_flop_time: float = 8.0e-8,
        gang_quantum: float = 0.0,
        gang_switch_cost: float = 2e-3,
        name: str = "paragon-backend",
    ) -> None:
        if node_flop_time <= 0:
            raise WorkloadError(f"node_flop_time must be > 0, got {node_flop_time!r}")
        self.sim = sim
        self.name = name
        self.mesh = MeshNetwork(sim, mesh_spec, name=f"{name}-mesh")
        self.allocator = PartitionAllocator(mesh_spec)
        self.node_flop_time = node_flop_time
        self._gang: GangScheduler | None = None
        if gang_quantum > 0:
            self._gang = GangScheduler(
                sim,
                nodes=mesh_spec.node_count,
                quantum=gang_quantum,
                switch_cost=gang_switch_cost,
                name=f"{name}-gang",
            )

    # -- allocation -----------------------------------------------------------

    def allocate(self, nodes: int, policy: str = "contiguous") -> Partition:
        """Grant a partition (see :class:`PartitionAllocator`)."""
        return self.allocator.allocate(nodes, policy)

    def release(self, partition: Partition) -> None:
        self.allocator.release(partition)

    # -- execution --------------------------------------------------------------

    def run_task(
        self,
        partition: Partition,
        supersteps: int,
        flops_per_node: float,
        exchange_words: float,
        gang: str = "task",
    ) -> Generator[Event, Any, BackendTaskResult]:
        """Run a BSP task on *partition*; returns its measurements.

        Each superstep: all nodes compute ``flops_per_node`` (in
        parallel; under gang scheduling the whole partition's work goes
        through the gang-shared node CPUs), then every node sends
        ``exchange_words`` to its ring neighbour over the mesh
        concurrently; the superstep ends when the slowest exchange
        lands (BSP barrier).
        """
        if supersteps < 1:
            raise WorkloadError(f"need >= 1 superstep, got {supersteps!r}")
        if flops_per_node < 0 or exchange_words < 0:
            raise WorkloadError("flops_per_node and exchange_words must be >= 0")
        sim = self.sim
        start = sim.now
        compute_time = 0.0
        comm_time = 0.0
        nodes = partition.nodes
        for _ in range(supersteps):
            t0 = sim.now
            work = flops_per_node * self.node_flop_time
            if work > 0:
                if self._gang is not None:
                    # Whole-partition work through the gang scheduler:
                    # node-seconds = per-node work x nodes; the gang
                    # machinery models the time-sharing.
                    yield from self._gang.run(gang, work * len(nodes))
                else:
                    yield sim.timeout(work)
            compute_time += sim.now - t0

            t0 = sim.now
            if exchange_words > 0 and len(nodes) > 1:
                sends = [
                    sim.process(
                        self.mesh.transfer(
                            nodes[i], nodes[(i + 1) % len(nodes)], exchange_words
                        ),
                        name=f"{gang}-xchg-{i}",
                    )
                    for i in range(len(nodes))
                ]
                yield sim.all_of(sends)
            comm_time += sim.now - t0
        return BackendTaskResult(
            elapsed=sim.now - start,
            compute_time=compute_time,
            comm_time=comm_time,
            partition=partition,
        )

    def dedicated_estimate(
        self,
        nodes: int,
        supersteps: int,
        flops_per_node: float,
        exchange_words: float,
    ) -> float:
        """Analytical dedicated ``T_p``: compute + uncontended ring hops.

        A contiguous partition's ring exchange pipelines perfectly, so
        the per-superstep communication is one packetised neighbour
        transfer (all happen concurrently on disjoint links except the
        wrap-around, which the estimate ignores — it is the model, not
        the truth).
        """
        if nodes < 1:
            raise ScheduleError(f"nodes must be >= 1, got {nodes!r}")
        spec = self.mesh.spec
        packets = max(1, int(-(-exchange_words // spec.packet_words)))
        per_packet = spec.hop_latency + min(exchange_words, spec.packet_words) * spec.per_word
        exchange = packets * per_packet if exchange_words > 0 and nodes > 1 else 0.0
        return supersteps * (flops_per_node * self.node_flop_time + exchange)
