"""Shared structure of the coupled heterogeneous platforms.

A *coupled platform* in the paper's sense is a front-end workstation
(time-shared, contended) plus a back-end MPP, joined by a link whose
contention behaviour is platform-specific. The two concrete platforms
(:class:`~repro.platforms.suncm2.SunCM2Platform`,
:class:`~repro.platforms.sunparagon.SunParagonPlatform`) share the
front-end CPU construction and the application-bookkeeping surface
defined here.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim.cpu import TimeSharedCPU
from ..sim.engine import Event, Process, Simulator
from ..sim.rng import RandomStreams
from .specs import CpuSpec

__all__ = ["CoupledPlatform"]


class CoupledPlatform:
    """Base class: a contended front-end CPU plus app bookkeeping.

    Parameters
    ----------
    sim:
        The simulator this platform lives in.
    cpu_spec:
        Scheduling parameters of the front-end CPU.
    streams:
        Named random streams (contention generators draw from these).
    name:
        Label for monitoring.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu_spec: CpuSpec,
        streams: RandomStreams | None = None,
        name: str = "platform",
    ) -> None:
        self.sim = sim
        self.name = name
        self.streams = streams if streams is not None else RandomStreams(seed=0)
        self.frontend_cpu = TimeSharedCPU(
            sim,
            capacity=cpu_spec.capacity,
            discipline=cpu_spec.discipline,
            quantum=cpu_spec.quantum,
            context_switch=cpu_spec.context_switch,
            name=f"{name}-cpu",
        )
        self._apps: list[Process] = []
        if cpu_spec.daemon_interval > 0 and cpu_spec.daemon_work > 0:
            sim.process(
                self._os_daemon(cpu_spec.daemon_interval, cpu_spec.daemon_work),
                name=f"{name}-os-daemon",
            )

    def _os_daemon(self, interval: float, work: float) -> Generator[Event, Any, None]:
        """Background OS activity: exponential idle/burst cycles.

        Note: a platform with the daemon enabled never drains its event
        queue — drive such simulations with
        :meth:`~repro.sim.engine.Simulator.run_until` or ``run(until=...)``.
        """
        rng = self.rng("os-daemon")
        while True:
            yield self.sim.timeout(float(rng.exponential(interval)))
            yield self.frontend_cpu.execute(float(rng.exponential(work)), tag="_os")

    # -- front-end computation ---------------------------------------------

    def compute(self, work: float, tag: str = "anon") -> Generator[Event, Any, float]:
        """Generator: run *work* dedicated-seconds on the front-end CPU.

        Returns the wall-clock response time (== *work* only when the
        CPU is otherwise idle).
        """
        response = yield self.frontend_cpu.execute(work, tag=tag)
        return response

    # -- application management ----------------------------------------------

    def spawn(self, generator: Generator[Event, Any, Any], name: str) -> Process:
        """Start an application process on this platform."""
        proc = self.sim.process(generator, name=name)
        self._apps.append(proc)
        return proc

    @property
    def applications(self) -> tuple[Process, ...]:
        """Processes spawned through :meth:`spawn`, in start order."""
        return tuple(self._apps)

    def rng(self, stream: str):
        """Named random generator scoped to this platform."""
        return self.streams.get(f"{self.name}/{stream}")
