"""The Sun/CM2 coupled platform simulator (§3.1).

Architecture facts the simulator encodes (all from the paper):

* The CM2 is an SIMD machine whose processors execute instructions
  received from the Sun; it *never runs a program by itself*. There is
  a single sequencer, so only one application can use the CM2 at a time
  (:attr:`SunCM2Platform.sequencer`).
* Data transfers are element-by-element copies performed by the Sun —
  they are **CPU-resident**, so CPU-bound contenders slow communication
  exactly as they slow computation (the ``p + 1`` factor).
* While the CM2 executes parallel instructions, the Sun may pre-execute
  serial code, buffered by the sequencer's bounded *lookahead* queue;
  the CM2 idles when the (possibly contended) Sun cannot feed it fast
  enough, and the Sun blocks when it needs a reduction result — the
  interleaving of Figure 2.

The executor optionally records a :class:`~repro.sim.monitors.Timeline`
with ``sun``/``cm2`` actors, from which the Figure 2 reproduction is
rendered and the §3.1.2 quantities measured:

* ``dcomp_cm2``  — CM2 busy time (decode + execute),
* ``didle_cm2``  — elapsed − dcomp (CM2 waiting on the Sun),
* ``dserial_cm2`` — Sun CPU service consumed by the task's serial
  stream (serial work + instruction issue + result pickup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..errors import WorkloadError
from ..sim.engine import Event, Simulator
from ..sim.monitors import Timeline
from ..sim.resources import FifoResource, Store
from ..sim.rng import RandomStreams
from ..traces.instructions import Parallel, Reduction, Serial, Trace, Transfer
from .base import CoupledPlatform
from .specs import DEFAULT_SUNCM2, SunCM2Spec

__all__ = ["SunCM2Platform", "TraceRunResult"]

#: Sentinel closing the sequencer's instruction queue.
_STOP = object()


@dataclass(frozen=True)
class TraceRunResult:
    """Measurements from one trace execution on the Sun/CM2.

    Attributes
    ----------
    elapsed:
        Wall-clock (virtual) duration of the run.
    cm2_busy:
        Total CM2 busy time — ``dcomp_cm2`` when measured dedicated.
    cm2_idle:
        ``elapsed − cm2_busy`` — ``didle_cm2`` when measured dedicated.
    sun_serial:
        Front-end CPU service consumed by serial work + issue + result
        pickup — ``dserial_cm2`` when measured dedicated.
    sun_transfer:
        Front-end CPU service consumed by data transfers.
    """

    elapsed: float
    cm2_busy: float
    cm2_idle: float
    sun_serial: float
    sun_transfer: float


class SunCM2Platform(CoupledPlatform):
    """Simulated Sun front-end + CM2 SIMD back-end."""

    def __init__(
        self,
        sim: Simulator,
        spec: SunCM2Spec = DEFAULT_SUNCM2,
        streams: RandomStreams | None = None,
        name: str = "suncm2",
    ) -> None:
        super().__init__(sim, spec.cpu, streams, name=name)
        self.spec = spec
        #: Single sequencer: one application on the CM2 at a time.
        self.sequencer = FifoResource(sim, capacity=1, name=f"{name}-sequencer")

    # -- communication -----------------------------------------------------

    def transfer(
        self, size_words: float, count: int = 1, tag: str = "xfer"
    ) -> Generator[Event, Any, float]:
        """Move ``count`` messages of ``size_words`` to/from the CM2.

        Element-by-element host-driven copy: the whole cost is Sun CPU
        work, so the returned wall-clock time stretches with CPU
        contention. Direction does not matter on this platform (the
        model fits symmetric α/β; the underlying copy loop is the same).
        """
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count!r}")
        work = count * self.spec.message_cpu_time(size_words)
        response = yield self.frontend_cpu.execute(work, tag=tag)
        return response

    # -- trace execution ------------------------------------------------------

    def run_trace(
        self,
        trace: Trace,
        tag: str = "task",
        timeline: Timeline | None = None,
        acquire_sequencer: bool = True,
    ) -> Generator[Event, Any, TraceRunResult]:
        """Execute *trace* and return its :class:`TraceRunResult`.

        This is a generator to be driven as a simulation process:
        ``result = yield from platform.run_trace(trace)``.
        """
        sim = self.sim
        seq_req = None
        if acquire_sequencer:
            seq_req = self.sequencer.request()
            yield seq_req
        try:
            start = sim.now
            serial_tag = f"{tag}/serial"
            xfer_tag = f"{tag}/xfer"
            # Settle the fast-forward CPU's lazy accounting before
            # sampling its counters mid-run.
            self.frontend_cpu.sync()
            serial_before = self.frontend_cpu.service_by_tag.get(serial_tag, 0.0)
            xfer_before = self.frontend_cpu.service_by_tag.get(xfer_tag, 0.0)

            queue: Store = Store(sim, capacity=self.spec.lookahead, name=f"{tag}-iq")
            backend_busy = [0.0]
            backend = sim.process(
                self._backend(queue, backend_busy, timeline), name=f"{tag}-cm2"
            )

            for ins in trace:
                if isinstance(ins, Serial):
                    t0 = sim.now
                    yield self.frontend_cpu.execute(ins.work, tag=serial_tag)
                    self._mark(timeline, t0, "sun", "serial")
                elif isinstance(ins, Parallel):
                    t0 = sim.now
                    yield self.frontend_cpu.execute(self.spec.issue_cost, tag=serial_tag)
                    self._mark(timeline, t0, "sun", "issue")
                    t0 = sim.now
                    yield queue.put((ins.work, None))
                    self._mark(timeline, t0, "sun", "stall", "queue full")
                elif isinstance(ins, Reduction):
                    t0 = sim.now
                    yield self.frontend_cpu.execute(self.spec.issue_cost, tag=serial_tag)
                    self._mark(timeline, t0, "sun", "issue")
                    done = sim.event(name=f"{tag}-reduction")
                    yield queue.put((ins.work, done))
                    t0 = sim.now
                    yield done
                    self._mark(timeline, t0, "sun", "wait", "reduction result")
                    t0 = sim.now
                    yield self.frontend_cpu.execute(self.spec.result_return, tag=serial_tag)
                    self._mark(timeline, t0, "sun", "serial", "pick up result")
                elif isinstance(ins, Transfer):
                    t0 = sim.now
                    yield from self.transfer(ins.size, ins.count, tag=xfer_tag)
                    self._mark(timeline, t0, "sun", "transfer")
                else:  # pragma: no cover - Trace() already validates
                    raise WorkloadError(f"unknown instruction {ins!r}")

            yield queue.put(_STOP)
            yield backend
            elapsed = sim.now - start
            self.frontend_cpu.sync()
            sun_serial = self.frontend_cpu.service_by_tag.get(serial_tag, 0.0) - serial_before
            sun_transfer = self.frontend_cpu.service_by_tag.get(xfer_tag, 0.0) - xfer_before
            return TraceRunResult(
                elapsed=elapsed,
                cm2_busy=backend_busy[0],
                cm2_idle=max(0.0, elapsed - backend_busy[0]),
                sun_serial=sun_serial,
                sun_transfer=sun_transfer,
            )
        finally:
            if seq_req is not None:
                self.sequencer.release(seq_req)

    def _backend(
        self, queue: Store, busy_accumulator: list[float], timeline: Timeline | None
    ) -> Generator[Event, Any, None]:
        """The CM2 sequencer loop: pop, decode, execute, signal."""
        sim = self.sim
        while True:
            t0 = sim.now
            item = yield queue.get()
            if item is _STOP:
                self._mark(timeline, t0, "cm2", "idle", "stream ended")
                return
            self._mark(timeline, t0, "cm2", "idle", "waiting for instruction")
            work, done_event = item
            t0 = sim.now
            if self.spec.decode_overhead > 0:
                yield sim.timeout(self.spec.decode_overhead)
            if work > 0:
                yield sim.timeout(work)
            busy_accumulator[0] += sim.now - t0
            self._mark(timeline, t0, "cm2", "execute")
            if done_event is not None:
                done_event.succeed(sim.now)

    def _mark(
        self, timeline: Timeline | None, start: float, actor: str, state: str, detail: str = ""
    ) -> None:
        """Record the interval [start, now] on *timeline* (if any).

        Callers invoke this immediately after an activity completes, so
        the interval's end is the current simulation time. Zero-length
        intervals are dropped by the Timeline itself.
        """
        if timeline is not None:
            timeline.add(start, self.sim.now, actor, state, detail)
