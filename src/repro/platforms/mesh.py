"""The Paragon's 2-D mesh interconnect and partition allocation.

§3.2 of the paper notes that, although the Paragon is space-shared,
*"traffic on the mesh may affect an application's performance by
slowing down its communication. This kind of inter-partition contention
is addressed by Liu et al. [12] ... These effects can be included in
T_p."* This module builds that substrate:

* :class:`MeshNetwork` — a rows×cols mesh of nodes joined by
  bidirectional links (each direction its own FIFO channel), with
  deterministic dimension-ordered (XY) routing and per-hop
  store-and-forward transfer of transport fragments. Messages crossing
  a busy link queue behind it — the physical mechanism of
  inter-partition contention.
* :class:`PartitionAllocator` — node allocation in the two styles the
  Liu et al. citation contrasts: ``contiguous`` rectangular
  sub-meshes (messages stay inside the rectangle, minimal
  interference) and ``scattered`` free-list allocation (fragmented
  partitions whose traffic crosses other partitions' rows/columns).

The `T_p` experiment built on these lives in
:func:`repro.experiments.backend.mesh_contention_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable, Sequence

from ..errors import ScheduleError, SimulationError, WorkloadError
from ..sim.engine import Event, Simulator
from ..sim.resources import FifoResource
from ..units import check_nonnegative, check_positive

__all__ = ["MeshSpec", "MeshNetwork", "Partition", "PartitionAllocator"]

#: A node coordinate on the mesh.
Coord = tuple[int, int]


@dataclass(frozen=True)
class MeshSpec:
    """Ground truth for the mesh interconnect.

    Attributes
    ----------
    rows, cols:
        Mesh dimensions (the SDSC Paragon was a 16×...-node machine;
        defaults keep experiments quick).
    hop_latency:
        Router/link startup per hop, seconds.
    per_word:
        Per-word occupancy of one link, seconds (NX-class links are an
        order of magnitude faster than the external Ethernet).
    packet_words:
        Store-and-forward packet size: longer messages pipeline as
        packets of at most this many words.
    """

    rows: int = 8
    cols: int = 8
    hop_latency: float = 5e-6
    per_word: float = 2.5e-8
    packet_words: float = 512.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"mesh must be at least 1x1, got {self.rows}x{self.cols}")
        check_nonnegative(self.hop_latency, "hop_latency")
        check_nonnegative(self.per_word, "per_word")
        check_positive(self.packet_words, "packet_words")

    @property
    def node_count(self) -> int:
        return self.rows * self.cols


class MeshNetwork:
    """A rows×cols mesh with XY routing and contended links."""

    def __init__(self, sim: Simulator, spec: MeshSpec = MeshSpec(), name: str = "mesh") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        # One FIFO per directed link, created lazily.
        self._links: dict[tuple[Coord, Coord], FifoResource] = {}
        self.messages = 0
        self.total_hops = 0

    # -- topology -----------------------------------------------------------

    def _check_node(self, node: Coord) -> None:
        r, c = node
        if not (0 <= r < self.spec.rows and 0 <= c < self.spec.cols):
            raise SimulationError(f"node {node!r} outside the {self.spec.rows}x{self.spec.cols} mesh")

    def route(self, src: Coord, dst: Coord) -> list[Coord]:
        """Deterministic XY route: correct the column first, then the row.

        Returns the node sequence including both endpoints.
        """
        self._check_node(src)
        self._check_node(dst)
        path = [src]
        r, c = src
        step = 1 if dst[1] > c else -1
        while c != dst[1]:
            c += step
            path.append((r, c))
        step = 1 if dst[0] > r else -1
        while r != dst[0]:
            r += step
            path.append((r, c))
        return path

    def _link(self, a: Coord, b: Coord) -> FifoResource:
        key = (a, b)
        link = self._links.get(key)
        if link is None:
            link = FifoResource(self.sim, capacity=1, name=f"{self.name}-{a}->{b}")
            self._links[key] = link
        return link

    def links_used(self) -> int:
        """Number of directed links that have carried traffic."""
        return len(self._links)

    # -- transfers -----------------------------------------------------------

    def transfer(
        self, src: Coord, dst: Coord, size_words: float
    ) -> Generator[Event, Any, float]:
        """Move one message src → dst; returns the elapsed time.

        Store-and-forward per packet: each packet holds each link on
        its path for ``hop_latency + packet/per_word`` seconds, in path
        order, so messages crossing a congested link queue behind the
        traffic already there.
        """
        if size_words < 0:
            raise WorkloadError(f"message size must be >= 0, got {size_words!r}")
        start = self.sim.now
        path = self.route(src, dst)
        self.messages += 1
        if len(path) == 1:
            return 0.0  # same node
        packets = self._packets(size_words)
        for packet in packets:
            hold = self.spec.hop_latency + packet * self.spec.per_word
            for a, b in zip(path[:-1], path[1:]):
                self.total_hops += 1
                yield from self._link(a, b).acquire(hold)
        return self.sim.now - start

    def _packets(self, size_words: float) -> list[float]:
        limit = self.spec.packet_words
        if size_words <= limit:
            return [float(size_words)]
        n = int(-(-size_words // limit))
        return [size_words / n] * n


@dataclass(frozen=True)
class Partition:
    """A set of nodes granted to one application."""

    nodes: tuple[Coord, ...]
    contiguous: bool

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ScheduleError("a partition needs at least one node")

    def __len__(self) -> int:
        return len(self.nodes)


class PartitionAllocator:
    """Space-sharing of the mesh's nodes.

    Two policies:

    * ``"contiguous"`` — first-fit rectangular sub-mesh; all
      intra-partition XY routes stay inside the rectangle, so separate
      partitions cannot interfere (the conventional allocator);
    * ``"scattered"`` — take the first free nodes in row-major order
      regardless of shape (the non-contiguous allocation of Liu et
      al. [12]); routes between a fragmented partition's nodes cross
      foreign rows/columns, creating the inter-partition contention
      the paper cites.
    """

    def __init__(self, spec: MeshSpec = MeshSpec()) -> None:
        self.spec = spec
        self._free = {(r, c) for r in range(spec.rows) for c in range(spec.cols)}

    @property
    def free_nodes(self) -> int:
        return len(self._free)

    def allocate(self, count: int, policy: str = "contiguous") -> Partition:
        """Grant *count* nodes under *policy*.

        Raises
        ------
        ScheduleError
            If the request cannot be satisfied (not enough free nodes,
            or no free rectangle of the needed shape for contiguous
            allocation).
        """
        if count < 1:
            raise ScheduleError(f"partition size must be >= 1, got {count!r}")
        if count > len(self._free):
            raise ScheduleError(
                f"requested {count} nodes but only {len(self._free)} are free"
            )
        if policy == "contiguous":
            nodes = self._find_rectangle(count)
            if nodes is None:
                raise ScheduleError(
                    f"no free rectangle with {count} nodes (fragmentation); "
                    "try policy='scattered'"
                )
            contiguous = True
        elif policy == "scattered":
            nodes = tuple(sorted(self._free))[:count]
            contiguous = False
        else:
            raise ScheduleError(f"unknown policy {policy!r}")
        self._free.difference_update(nodes)
        return Partition(nodes=tuple(nodes), contiguous=contiguous)

    def release(self, partition: Partition) -> None:
        """Return a partition's nodes to the free pool."""
        overlap = self._free.intersection(partition.nodes)
        if overlap:
            raise ScheduleError(f"nodes {sorted(overlap)} are already free")
        self._free.update(partition.nodes)

    def _find_rectangle(self, count: int) -> tuple[Coord, ...] | None:
        """First-fit search over all rectangle shapes with >= count nodes.

        Prefers the shape with the fewest wasted nodes, then the most
        square one (shorter internal routes).
        """
        shapes = []
        for h in range(1, self.spec.rows + 1):
            w = -(-count // h)  # ceil
            if w <= self.spec.cols:
                shapes.append((h, w, h * w - count, abs(h - w)))
        shapes.sort(key=lambda s: (s[2], s[3]))
        for h, w, _waste, _sq in shapes:
            for r0 in range(self.spec.rows - h + 1):
                for c0 in range(self.spec.cols - w + 1):
                    rect = [
                        (r, c)
                        for r in range(r0, r0 + h)
                        for c in range(c0, c0 + w)
                    ]
                    if all(node in self._free for node in rect):
                        # The whole rectangle is granted (internal
                        # fragmentation is the price of contiguity).
                        return tuple(rect)
        return None
