#!/usr/bin/env python
"""Mapping a task DAG under contention: chains were only the beginning.

The paper's applications are chains of coarse-grained tasks; real
heterogeneous pipelines branch and join. This example maps a seven-task
analysis DAG over the three-machine system of
``scheduling_advisor.py``, comparing:

* the serialised model (the paper's execution assumption),
* the concurrent schedule from exhaustive search,
* the EFT (HEFT-style) heuristic — what you'd use when the assignment
  space is too big to enumerate,

and then re-maps everything after CPU hogs land on the MPP's front
end. The contention model feeds both the enumeration and the
heuristic through the same adjusted cost matrices.

Run: ``python examples/dag_pipeline.py``
"""

import itertools

from repro.core import ApplicationProfile, TaskGraph, eft_mapping, evaluate_dag_mapping
from repro.experiments import calibrate_paragon, render_table
from repro.ext import HeterogeneousSystem, MachineState
from repro.platforms import DEFAULT_SUNPARAGON

GRAPH = TaskGraph(
    tasks=("ingest", "clean", "fft", "solve", "stats", "render", "report"),
    edges={
        ("ingest", "clean"): 1.0,
        ("clean", "fft"): 2.0,
        ("clean", "stats"): 0.5,
        ("fft", "solve"): 1.0,
        ("solve", "render"): 1.5,
        ("stats", "report"): 0.2,
        ("render", "report"): 1.0,
    },
)

DEDICATED_EXEC = {
    "ingest": {"ws-alpha": 3.0, "ws-beta": 3.3, "mpp": 8.0},
    "clean": {"ws-alpha": 2.0, "ws-beta": 2.2, "mpp": 5.0},
    "fft": {"ws-alpha": 12.0, "ws-beta": 13.0, "mpp": 2.0},
    "solve": {"ws-alpha": 18.0, "ws-beta": 20.0, "mpp": 2.5},
    "stats": {"ws-alpha": 4.0, "ws-beta": 4.4, "mpp": 6.0},
    "render": {"ws-alpha": 5.0, "ws-beta": 5.5, "mpp": 9.0},
    "report": {"ws-alpha": 1.0, "ws-beta": 1.1, "mpp": 4.0},
}


def build_system() -> HeterogeneousSystem:
    cal = calibrate_paragon(DEFAULT_SUNPARAGON)
    machines = [
        MachineState("ws-alpha", delay_comp=cal.delay_comp, delay_comm=cal.delay_comm,
                     delay_comm_sized=cal.delay_comm_sized),
        MachineState("ws-beta", delay_comp=cal.delay_comp, delay_comm=cal.delay_comm,
                     delay_comm_sized=cal.delay_comm_sized),
        MachineState("mpp"),
    ]
    names = [m.name for m in machines]
    comm = {(a, b): 1.2 for a in names for b in names if a != b}
    return HeterogeneousSystem(machines, comm)


def best_concurrent(exec_time, comm_time):
    machines = ("ws-alpha", "ws-beta", "mpp")
    best_value, best_assignment = float("inf"), None
    for combo in itertools.product(machines, repeat=len(GRAPH.tasks)):
        assignment = dict(zip(GRAPH.tasks, combo))
        value = evaluate_dag_mapping(GRAPH, exec_time, comm_time, assignment,
                                     concurrent=True)
        if value < best_value:
            best_value, best_assignment = value, assignment
    return best_value, best_assignment


def report(label: str, system: HeterogeneousSystem) -> None:
    problem = system.adjusted_problem(GRAPH.tasks, DEDICATED_EXEC)
    exec_time, comm_time = problem.exec_time, problem.comm_time

    serial_best = min(
        evaluate_dag_mapping(GRAPH, exec_time, comm_time,
                             dict(zip(GRAPH.tasks, combo)))
        for combo in itertools.product(problem.machines, repeat=len(GRAPH.tasks))
    )
    optimal, optimal_assignment = best_concurrent(exec_time, comm_time)
    heuristic = eft_mapping(GRAPH, exec_time, comm_time)
    heuristic_value = evaluate_dag_mapping(GRAPH, exec_time, comm_time, heuristic,
                                           concurrent=True)
    print(f"--- {label} ---")
    print(render_table(
        ("model", "makespan (s)", "mapping"),
        [
            ("serialised optimum (paper's model)", serial_best, "-"),
            ("concurrent optimum (exhaustive)", optimal,
             " ".join(f"{t[:3]}:{m[-5:]}" for t, m in optimal_assignment.items())),
            ("EFT heuristic", heuristic_value,
             " ".join(f"{t[:3]}:{m[-5:]}" for t, m in heuristic.items())),
        ],
    ))
    print(f"    heuristic within {heuristic_value / optimal:.2f}x of optimal\n")


def main() -> None:
    system = build_system()
    report("dedicated system", system)
    for k in range(3):
        system.arrive("mpp", ApplicationProfile.cpu_bound(f"batch-{k}"))
    system.arrive("ws-alpha", ApplicationProfile("mover", 0.7, 800))
    report("mpp swamped by 3 CPU hogs, ws-alpha running a 70%-comm mover", system)


if __name__ == "__main__":
    main()
