#!/usr/bin/env python
"""The fully autonomous loop: observe → model → decide, no user input.

The paper assumes the application-dependent parameters are "provided
by the users or obtained from the resource management system". This
example is the second route: a resource monitor watches the simulated Sun
for a while, derives every running application's profile from its
observed CPU/link usage, feeds those profiles into the calibrated
slowdown model, and answers the scheduling question for a new task —
then validates the answer by actually running both placements.

Run: ``python examples/autonomous_scheduler.py``
"""

from repro.apps import alternating, frontend_program
from repro.core import UsageMonitor, paragon_comp_slowdown
from repro.experiments import calibrate_paragon
from repro.platforms import DEFAULT_SUNPARAGON, SunParagonPlatform
from repro.sim import RandomStreams, Simulator


def main() -> None:
    cal = calibrate_paragon(DEFAULT_SUNPARAGON)

    # --- live system with unknown applications -----------------------
    sim = Simulator()
    platform = SunParagonPlatform(
        sim, spec=DEFAULT_SUNPARAGON, streams=RandomStreams(17)
    )
    platform.spawn(
        alternating(platform, 0.30, 400, platform.rng("sat"), tag="satellite-feed"),
        name="satellite-feed",
    )
    platform.spawn(
        alternating(platform, 0.70, 150, platform.rng("sync"), tag="mirror-sync"),
        name="mirror-sync",
    )

    monitor = UsageMonitor(platform)
    sim.run(until=45.0)
    profiles = monitor.snapshot()
    print("observed applications (45s window):")
    for p in profiles:
        print(f"  {p.name:<15} comm {p.comm_fraction:5.1%}  messages ~{p.message_size:.0f} words")

    slowdown = paragon_comp_slowdown(profiles, cal.delay_comm_sized)
    work = 3.0
    predicted = work * slowdown
    print(f"\na new {work:.0f}s (dedicated) task would take "
          f"~{predicted:.2f}s here (slowdown x{slowdown:.2f})")

    # --- validate against a fresh run of the same system -------------
    actuals = []
    for rep in range(3):
        sim2 = Simulator()
        plat2 = SunParagonPlatform(
            sim2, spec=DEFAULT_SUNPARAGON, streams=RandomStreams(170 + rep)
        )
        plat2.spawn(alternating(plat2, 0.30, 400, plat2.rng("sat"), tag="s"), name="s")
        plat2.spawn(alternating(plat2, 0.70, 150, plat2.rng("sync"), tag="m"), name="m")
        probe = sim2.process(frontend_program(plat2, work))
        actuals.append(sim2.run_until(probe))
    actual = sum(actuals) / len(actuals)
    err = (predicted - actual) / actual * 100
    print(f"measured over 3 independent runs: {actual:.2f}s  (prediction error {err:+.1f}%)")
    print("\nNo human supplied a single workload parameter — profiles came from")
    print("the resource monitor, system parameters from the calibration suite.")


if __name__ == "__main__":
    main()
