#!/usr/bin/env python
"""The full calibration workflow of §3.1.1 / §3.2.1, step by step.

Runs the paper's benchmark procedures on the simulated platforms and
prints every intermediate artifact: the CM2 two-benchmark estimate, the
ping-pong sweep, the piecewise regression with its threshold search,
and the three kinds of delay tables. Finishes with a validation: the
fitted model predicts a *dedicated* workload it has never seen.

Run: ``python examples/calibration_workflow.py``
"""

from repro.core import DataSet, dedicated_comm_cost
from repro.experiments import (
    calibrate_cm2,
    calibrate_paragon,
    pingpong_sweep,
    render_table,
)
from repro.platforms import DEFAULT_SUNCM2, DEFAULT_SUNPARAGON, SunParagonPlatform
from repro.apps import message_burst
from repro.sim import Simulator


def cm2_section() -> None:
    print("--- Sun/CM2 (the two-benchmark procedure of §3.1.1) ---")
    cal = calibrate_cm2(DEFAULT_SUNCM2)
    print(f"  alpha_sun ~= alpha_cm2 ~= {cal.params_out.alpha * 1e3:.3f} ms")
    print(f"  beta_sun  = {cal.params_out.beta:,.0f} words/s")
    print(f"  beta_cm2  = {cal.params_in.beta:,.0f} words/s")
    print()


def paragon_section() -> None:
    print("--- Sun/Paragon (§3.2.1: ping-pong sweep + regression) ---")
    sweep = pingpong_sweep(DEFAULT_SUNPARAGON, count=200)
    print(render_table(
        ("message size (words)", "per-message time (ms)"),
        [(s, t * 1e3) for s, t in sweep.items()],
    ))
    cal = calibrate_paragon(DEFAULT_SUNPARAGON)
    po = cal.params_out
    print(f"\n  fitted threshold: {po.threshold:.0f} words (exhaustive search)")
    print(f"  small piece: alpha = {po.small.alpha * 1e3:.3f} ms,"
          f" beta = {po.small.beta:,.0f} words/s")
    print(f"  large piece: alpha = {po.large.alpha * 1e3:.3f} ms,"
          f" beta = {po.large.beta:,.0f} words/s")

    print("\n  delay_comp^i (CPU-bound generators vs ping-pong):")
    print("   ", [round(d, 3) for d in cal.delay_comp.delays])
    print("  delay_comm^i (1-word communicating generators vs ping-pong):")
    print("   ", [round(d, 3) for d in cal.delay_comm.delays])
    print("  delay_comm^{i,j} (sized generators vs a CPU-bound probe):")
    for j in cal.delay_comm_sized.buckets:
        print(f"    j={j:>5}:", [round(d, 3) for d in cal.delay_comm_sized.tables[j].delays])
    print()
    return cal


def validation_section(cal) -> None:
    print("--- Validation: predict an unseen dedicated workload ---")
    rows = []
    for size, count in [(48, 700), (300, 500), (900, 300), (1800, 200), (3000, 100)]:
        sim = Simulator()
        platform = SunParagonPlatform(sim, spec=DEFAULT_SUNPARAGON)
        probe = sim.process(message_burst(platform, size, count, "out"))
        actual = sim.run_until(probe)
        predicted = dedicated_comm_cost([DataSet(count, size)], cal.params_out)
        err = (predicted - actual) / actual * 100
        rows.append((size, count, actual, predicted, f"{err:+.1f}%"))
    print(render_table(("size", "count", "measured (s)", "predicted (s)", "error"), rows))


def main() -> None:
    cm2_section()
    cal = paragon_section()
    validation_section(cal)


if __name__ == "__main__":
    main()
