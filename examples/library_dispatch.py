#!/usr/bin/env python
"""Library-task dispatch: where should matmul / sort / GE run today?

The §2 scenario: the Sun hosts an application whose building-block
tasks (matrix multiply, sorting, Gaussian elimination) have efficient
codes on *both* machines — a scalar algorithm on the front-end and a
data-parallel one on the CM2. Equation (1) decides per task, and the
right answer changes with the front-end's load.

This script prints the dispatch table for an idle Sun and a Sun with
three CPU-bound competitors, then validates the contested decisions by
simulating both placements.

Run: ``python examples/library_dispatch.py``
"""

from repro.experiments import render_table
from repro.experiments.dispatch import (
    gauss_sun_cost,
    library_dispatch_experiment,
)
from repro.platforms import DEFAULT_SUNCM2


def decision_table(p: int) -> None:
    result = library_dispatch_experiment(spec=DEFAULT_SUNCM2, p=p)
    print(f"--- p = {p} extra CPU-bound applications on the Sun ---")
    print(result.render())
    print()


def main() -> None:
    spec = DEFAULT_SUNCM2
    print("Sun 4/60 front-end scalar rates: "
          f"{1 / spec.sun_flop_time / 1e6:.1f} MFLOPS, "
          f"{1 / spec.sun_compare_time / 1e6:.1f} M compares/s")
    print(f"GE n=200 dedicated on the Sun: {gauss_sun_cost(200, spec):.2f}s")
    print()
    decision_table(p=0)
    decision_table(p=3)
    print("Note the Gaussian-elimination rows: with an idle Sun the scalar")
    print("solver wins (shipping the system to the CM2 isn't worth it), but")
    print("three CPU-bound competitors flip the decision — the CM2's parallel")
    print("work doesn't stretch under front-end contention, the Sun's does.")


if __name__ == "__main__":
    main()
