#!/usr/bin/env python
"""Quickstart: predict contention effects and decide task placement.

Reproduces, in ~40 lines of user code, the paper's core loop:

1. describe the applications currently loading the front-end,
2. compute the slowdown factors from calibrated delay tables,
3. adjust dedicated-mode costs,
4. apply Equation (1): run the task on the back-end only if it wins
   after paying both transfers.

Run: ``python examples/quickstart.py``
"""

from repro.core import (
    ApplicationProfile,
    BackendTaskCosts,
    DataSet,
    decide_placement,
    dedicated_comm_cost,
    paragon_comm_slowdown,
    paragon_comp_slowdown,
)
from repro.experiments import calibrate_paragon
from repro.platforms import DEFAULT_SUNPARAGON


def main() -> None:
    # --- 1. The system test suite (runs once per platform; cached). ---
    cal = calibrate_paragon(DEFAULT_SUNPARAGON)
    print("calibrated Sun->Paragon small-message bandwidth:"
          f" {cal.params_out.small.beta:,.0f} words/s")

    # --- 2. Who else is on the front-end right now? -------------------
    contenders = [
        ApplicationProfile("climate-model", comm_fraction=0.30, message_size=800),
        ApplicationProfile("data-mover", comm_fraction=0.75, message_size=200),
    ]
    comp_slow = paragon_comp_slowdown(contenders, cal.delay_comm_sized)
    comm_slow = paragon_comm_slowdown(contenders, cal.delay_comp, cal.delay_comm)
    print(f"computation slowdown: {comp_slow:.2f}x   communication slowdown: {comm_slow:.2f}x")

    # --- 3. Our task's dedicated-mode costs (user-supplied). ----------
    dcomp_frontend = 8.0  # seconds on the Sun, dedicated
    backend = BackendTaskCosts(dcomp=1.1, didle=0.2, dserial=0.6)
    data_out = [DataSet(count=500, size=400)]  # ship the input
    data_in = [DataSet(count=1, size=2000)]  # fetch the result
    dcomm_out = dedicated_comm_cost(data_out, cal.params_out)
    dcomm_in = dedicated_comm_cost(data_in, cal.params_in)

    # --- 4. Equation (1) under the current load. ----------------------
    prediction = decide_placement(
        dcomp_frontend, backend, dcomm_out, dcomm_in, comp_slow, comm_slow
    )
    print(f"front-end elapsed: {prediction.t_frontend:.2f}s")
    print(
        f"back-end elapsed:  {prediction.t_backend:.2f}s"
        f" + transfers {prediction.c_out + prediction.c_in:.2f}s"
        f" = {prediction.backend_total:.2f}s"
    )
    where = "the Paragon" if prediction.offload else "the Sun"
    print(f"=> run the task on {where} (saves {prediction.advantage:.2f}s)")


if __name__ == "__main__":
    main()
