#!/usr/bin/env python
"""A live scheduling session: arrivals, departures, recalculated slowdowns.

The paper (§2): "The slowdown factor reflects the current load of the
system and is always calculated at run-time. It can be recalculated
every time the system status changes or when new applications arrive."

This example drives a :class:`~repro.core.SlowdownManager` through a
morning on the shared Sun, prints the O(p)-updated slowdown factors at
every job-mix change, and uses the time-varying extension to predict
how long a task started mid-session will take — including whether it
is worth migrating when the big data-mover shows up.

Run: ``python examples/runtime_manager.py``
"""

from repro.core import ApplicationProfile, SlowdownManager, paragon_comp_slowdown
from repro.experiments import calibrate_paragon
from repro.ext import LoadTimeline, predict_elapsed, should_migrate
from repro.platforms import DEFAULT_SUNPARAGON


def main() -> None:
    cal = calibrate_paragon(DEFAULT_SUNPARAGON)
    manager = SlowdownManager(cal.delay_comp, cal.delay_comm, cal.delay_comm_sized)
    timeline = LoadTimeline()

    def report(t: float, event: str) -> None:
        print(
            f"t={t:5.1f}s  {event:<38} p={manager.p}"
            f"  comp x{manager.comp_slowdown():.2f}"
            f"  comm x{manager.comm_slowdown():.2f}"
        )

    report(0.0, "(session start, machine idle)")

    events = [
        (10.0, "arrive", ApplicationProfile("visualizer", 0.20, 500)),
        (25.0, "arrive", ApplicationProfile("compile-farm", 0.00)),
        (60.0, "depart", "visualizer"),
        (80.0, "arrive", ApplicationProfile("data-mover", 0.85, 1000)),
    ]
    for t, kind, payload in events:
        if kind == "arrive":
            manager.arrive(payload)
            timeline.arrive(t, payload)
            report(t, f"{payload.name} arrives ({payload.comm_fraction:.0%} comm)")
        else:
            manager.depart(payload)
            timeline.depart(t, payload)
            report(t, f"{payload} departs")

    print(f"\nO(p^2) rebuilds performed during the session: {manager.rebuilds}"
          " (arrivals are O(p) incremental)")

    # A 30-dedicated-second task submitted at t=20: how long really?
    def slowdown_of(profiles):
        return paragon_comp_slowdown(list(profiles), cal.delay_comm_sized)

    work, start = 30.0, 20.0
    elapsed = predict_elapsed(work, timeline, slowdown_of, start=start)
    print(f"\nA {work:.0f}s (dedicated) task started at t={start:.0f}s is predicted "
          f"to take {elapsed:.1f}s under the recorded load history.")

    # When the data-mover arrives, should a half-done task migrate to a
    # second workstation that is idle but 1.4x slower per operation?
    remaining = 15.0
    current = slowdown_of(timeline.phase_at(80.0).profiles)
    target = 1.4  # idle slower machine: pure architecture ratio
    for cost in (2.0, 30.0):
        verdict = should_migrate(remaining, current, target, migration_cost=cost)
        print(
            f"migrate {remaining:.0f}s of remaining work (slowdown here x{current:.2f}, "
            f"there x{target:.2f}, move costs {cost:.0f}s)? -> {'yes' if verdict else 'no'}"
        )


if __name__ == "__main__":
    main()
