#!/usr/bin/env python
"""Contention-aware mapping of a task chain over multiple machines.

Recreates the paper's motivating example (Tables 1-4) and then scales
it up: a four-task pipeline over a three-machine heterogeneous system
whose per-machine load changes, using the §4 multi-machine
generalisation. Watch the optimal mapping flip as applications arrive.

Run: ``python examples/scheduling_advisor.py``
"""

from repro.core import ApplicationProfile
from repro.experiments import calibrate_paragon, tables_experiment
from repro.ext import HeterogeneousSystem, MachineState
from repro.platforms import DEFAULT_SUNPARAGON


def paper_example() -> None:
    print(tables_experiment().render())
    print()


def multi_machine() -> None:
    cal = calibrate_paragon(DEFAULT_SUNPARAGON)
    machines = [
        MachineState(
            "ws-alpha",
            delay_comp=cal.delay_comp,
            delay_comm=cal.delay_comm,
            delay_comm_sized=cal.delay_comm_sized,
        ),
        MachineState(
            "ws-beta",
            delay_comp=cal.delay_comp,
            delay_comm=cal.delay_comm,
            delay_comm_sized=cal.delay_comm_sized,
        ),
        MachineState("mpp"),  # space-shared MPP front-end, CM2-style
    ]
    names = [m.name for m in machines]
    link_cost = {(a, b): 1.5 for a in names for b in names if a != b}
    system = HeterogeneousSystem(machines, link_cost)

    tasks = ("ingest", "transform", "solve", "report")
    dedicated = {
        "ingest": {"ws-alpha": 4.0, "ws-beta": 4.5, "mpp": 9.0},
        "transform": {"ws-alpha": 6.0, "ws-beta": 6.5, "mpp": 2.5},
        "solve": {"ws-alpha": 20.0, "ws-beta": 22.0, "mpp": 3.0},
        "report": {"ws-alpha": 2.0, "ws-beta": 2.2, "mpp": 7.0},
    }

    def show(label: str) -> None:
        result = system.best_mapping(tasks, dedicated)
        placement = " ".join(f"{t}->{m}" for t, m in result.placement(tasks).items())
        print(f"{label:<46} {placement}   ({result.elapsed:.1f}s)")

    show("dedicated system:")

    system.arrive("ws-alpha", ApplicationProfile("editor", 0.05, 100))
    system.arrive("ws-alpha", ApplicationProfile("simulation", 0.00))
    show("ws-alpha loaded (2 apps):")

    system.arrive("mpp", ApplicationProfile.cpu_bound("batch-1"))
    system.arrive("mpp", ApplicationProfile.cpu_bound("batch-2"))
    system.arrive("mpp", ApplicationProfile.cpu_bound("batch-3"))
    show("mpp front-end swamped (3 CPU-bound apps):")

    system.depart("mpp", "batch-1")
    system.depart("mpp", "batch-2")
    system.depart("mpp", "batch-3")
    system.arrive("ws-beta", ApplicationProfile("ftp", 0.9, 1024))
    show("mpp free again, ws-beta moving data (90% comm):")


def main() -> None:
    print("=" * 72)
    print("Part 1 - the paper's Tables 1-4")
    print("=" * 72)
    paper_example()
    print("=" * 72)
    print("Part 2 - four tasks over three machines under changing load")
    print("=" * 72)
    multi_machine()


if __name__ == "__main__":
    main()
