#!/usr/bin/env python
"""Sweep the number of contenders and watch the slowdown model track.

Two sweeps:

* **Sun/CM2** — p CPU-bound contenders against a Gaussian-elimination
  run; model: ``max(dcomp + didle, dserial x (p+1))`` (§3.1.2).
* **Sun/Paragon** — p alternating contenders against an SOR run;
  model: the §3.2.2 probabilistic slowdown.

Run: ``python examples/contention_sweep.py``
"""

from repro.apps import alternating, cpu_bound, frontend_program
from repro.core import ApplicationProfile, cm2_slowdown, paragon_comp_slowdown, predict_backend_time
from repro.experiments import calibrate_paragon, render_table
from repro.platforms import (
    DEFAULT_SUNCM2,
    DEFAULT_SUNPARAGON,
    SunCM2Platform,
    SunParagonPlatform,
)
from repro.sim import RandomStreams, Simulator
from repro.traces import gauss_cm2_trace, measure_dedicated_cm2, sor_sun_work


def cm2_sweep(m: int = 150, max_p: int = 4) -> None:
    print(f"--- Sun/CM2: Gaussian elimination (M={m}) vs p CPU-bound contenders ---")
    trace = gauss_cm2_trace(m, DEFAULT_SUNCM2)
    dedicated = measure_dedicated_cm2(trace, DEFAULT_SUNCM2)
    rows = []
    for p in range(max_p + 1):
        sim = Simulator()
        platform = SunCM2Platform(sim, spec=DEFAULT_SUNCM2)
        for i in range(p):
            platform.spawn(cpu_bound(platform, tag=f"h{i}"), name=f"h{i}")
        probe = sim.process(platform.run_trace(trace, tag="probe"))
        actual = sim.run_until(probe).elapsed
        model = predict_backend_time(dedicated.costs, cm2_slowdown(p))
        rows.append((p, actual, model, f"{(model - actual) / actual * 100:+.1f}%"))
    print(render_table(("p", "actual (s)", "model (s)", "error"), rows))
    print()


def paragon_sweep(m: int = 300, max_p: int = 4) -> None:
    print(f"--- Sun/Paragon: SOR (M={m}) vs p alternating contenders ---")
    cal = calibrate_paragon(DEFAULT_SUNPARAGON)
    work = sor_sun_work(m, 30, DEFAULT_SUNPARAGON)
    rows = []
    for p in range(max_p + 1):
        profiles = [
            ApplicationProfile(f"c{k}", comm_fraction=0.5, message_size=400)
            for k in range(p)
        ]
        actuals = []
        for rep in range(3):
            sim = Simulator()
            platform = SunParagonPlatform(
                sim, spec=DEFAULT_SUNPARAGON, streams=RandomStreams(31 * p + rep)
            )
            for k, prof in enumerate(profiles):
                platform.spawn(
                    alternating(platform, prof.comm_fraction, prof.message_size,
                                platform.rng(f"c{k}"), tag=prof.name),
                    name=prof.name,
                )
            probe = sim.process(frontend_program(platform, work))
            actuals.append(sim.run_until(probe))
        actual = sum(actuals) / len(actuals)
        model = work * paragon_comp_slowdown(profiles, cal.delay_comm_sized)
        rows.append((p, actual, model, f"{(model - actual) / actual * 100:+.1f}%"))
    print(render_table(("p", "actual (s)", "model (s)", "error"), rows))


def main() -> None:
    cm2_sweep()
    paragon_sweep()


if __name__ == "__main__":
    main()
