#!/usr/bin/env python
"""Adaptive execution inside the simulator: escape arriving contention.

§4 of the paper: "the slowdown factors should be recalculated when the
job mix changes, and task migration should be considered." This script
runs the same 6-second task three ways on a two-workstation system
where a CPU hog arrives on ws1 two seconds in:

* statically on ws1 (suffers the hog),
* statically on ws2 (a 1.3x slower machine, but never disturbed),
* adaptively — starts on the faster ws1, notices the hog at the next
  chunk boundary, migrates.

Run: ``python examples/adaptive_runtime.py``
"""

from repro.ext import AdaptiveRunner
from repro.sim import Simulator, TimeSharedCPU


def scenario(mode: str) -> tuple[float, str, int]:
    sim = Simulator()
    cpus = {
        "ws1": TimeSharedCPU(sim, discipline="ps", name="ws1"),
        "ws2": TimeSharedCPU(sim, discipline="ps", name="ws2"),
    }
    runner = AdaptiveRunner(
        sim, cpus, speed={"ws1": 1.0, "ws2": 0.77}, migration_cost=0.3, chunk=0.2
    )

    def late_hog():
        yield sim.timeout(2.0)
        while True:
            yield cpus["ws1"].execute(0.05, tag="hog")

    sim.process(late_hog(), daemon=True)

    work = 6.0
    if mode == "adaptive":
        def main():
            outcome = yield from runner.run(work, "ws1")
            return outcome

        outcome = sim.run_until(sim.process(main()))
        return outcome.elapsed, outcome.finished_on, len(outcome.migrations)
    machine = mode
    done = cpus[machine].execute(work / runner.speed[machine], tag="static")
    sim.run_until(done)
    return sim.now, machine, 0


def main() -> None:
    print("A 6s task; a CPU hog arrives on ws1 at t=2s; ws2 runs at 0.77x.\n")
    rows = []
    for mode, label in [
        ("ws1", "static on ws1 (fast machine, gets swamped)"),
        ("ws2", "static on ws2 (slow machine, undisturbed)"),
        ("adaptive", "adaptive (start fast, migrate when the hog lands)"),
    ]:
        elapsed, finished_on, migrations = scenario(mode)
        rows.append((label, elapsed, finished_on, migrations))
    width = max(len(r[0]) for r in rows)
    for label, elapsed, finished_on, migrations in rows:
        extra = f", {migrations} migration(s)" if migrations else ""
        print(f"  {label:<{width}}  {elapsed:6.2f}s  (ends on {finished_on}{extra})")
    print("\nThe adaptive run recalculates the placement at every chunk")
    print("boundary from the observed job mix — the paper's future-work")
    print("loop, closed.")


if __name__ == "__main__":
    main()
